package service

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

// TestPlanCacheMetricsExposed wires an engine's plan-cache counters
// into a registry and scrapes: the three series must appear, labelled
// with the engine name, and track the engine's live stats (collectors
// sample at scrape time, so a second scrape after more traffic moves).
func TestPlanCacheMetricsExposed(t *testing.T) {
	eng := sqlengine.New("metricsdb")
	eng.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))`)
	eng.MustExec(`INSERT INTO t VALUES (1, 'a')`)

	reg := telemetry.NewRegistry()
	RegisterPlanCacheMetrics(reg, eng)

	scrape := func() string {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	s := eng.NewSession()
	for i := 0; i < 3; i++ {
		if _, err := s.Execute(`SELECT v FROM t WHERE id = 1`); err != nil {
			t.Fatal(err)
		}
	}
	stats := eng.PlanCacheStats()
	text := scrape()
	for _, want := range []string{
		fmt.Sprintf(`%s{engine="metricsdb"} %d`, MetricPlanCacheHits, stats.Hits),
		fmt.Sprintf(`%s{engine="metricsdb"} %d`, MetricPlanCacheMisses, stats.Misses),
		fmt.Sprintf(`%s{engine="metricsdb"} %d`, MetricPlanCacheSize, stats.Size),
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}

	// More hits between scrapes must show up on the next scrape.
	if _, err := s.Execute(`SELECT v FROM t WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	after := eng.PlanCacheStats()
	if after.Hits <= stats.Hits {
		t.Fatalf("expected extra hit: %+v -> %+v", stats, after)
	}
	text = scrape()
	want := fmt.Sprintf(`%s{engine="metricsdb"} %d`, MetricPlanCacheHits, after.Hits)
	if !strings.Contains(text, want) {
		t.Fatalf("second scrape missing %q:\n%s", want, text)
	}
}

// TestRegisterPlanCacheMetricsNil pins the documented no-op contract.
func TestRegisterPlanCacheMetricsNil(t *testing.T) {
	RegisterPlanCacheMetrics(nil, nil)
	RegisterPlanCacheMetrics(telemetry.NewRegistry(), nil)
	RegisterPlanCacheMetrics(nil, sqlengine.New("x"))
}
