package service

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/daix"
	"dais/internal/xmlutil"
)

// resolveCollection resolves an abstract name to an XML collection
// resource.
func (e *Endpoint) resolveCollection(name string) (*daix.XMLCollectionResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	cr, ok := r.(*daix.XMLCollectionResource)
	if !ok {
		return nil, typeFault(name, "XMLCollection")
	}
	return cr, nil
}

// resolveSequence resolves an abstract name to an XML sequence resource.
func (e *Endpoint) resolveSequence(name string) (*daix.XMLSequenceResource, error) {
	r, err := e.svc.Resolve(name)
	if err != nil {
		return nil, err
	}
	sr, ok := r.(*daix.XMLSequenceResource)
	if !ok {
		return nil, typeFault(name, "XMLSequence")
	}
	return sr, nil
}

// registerDAIX wires the WS-DAIX operations.
func (e *Endpoint) registerDAIX() {
	// XMLCollectionAccess document operations.
	e.handle(XMLCollectionAccess, ActAddDocument, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		docName := body.FindText(NSDAIX, "DocumentName")
		docWrap := body.Find(NSDAIX, "Document")
		if docName == "" || docWrap == nil || len(docWrap.ChildElements()) != 1 {
			return nil, &core.InvalidExpressionFault{Detail: "AddDocument requires DocumentName and a single Document child"}
		}
		if err := cr.AddDocument(docName, docWrap.ChildElements()[0]); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return xmlutil.NewElement(NSDAIX, "AddDocumentResponse"), nil
	})
	e.handle(XMLCollectionAccess, ActGetDocument, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		doc, err := cr.GetDocument(body.FindText(NSDAIX, "DocumentName"))
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := xmlutil.NewElement(NSDAIX, "GetDocumentResponse")
		wrap := resp.Add(NSDAIX, "Document")
		wrap.AppendChild(doc)
		return resp, nil
	})
	e.handle(XMLCollectionAccess, ActRemoveDocument, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		if err := cr.RemoveDocument(body.FindText(NSDAIX, "DocumentName")); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return xmlutil.NewElement(NSDAIX, "RemoveDocumentResponse"), nil
	})
	e.handle(XMLCollectionAccess, ActListDocuments, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		names, err := cr.ListDocuments()
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := xmlutil.NewElement(NSDAIX, "ListDocumentsResponse")
		for _, n := range names {
			resp.AddText(NSDAIX, "DocumentName", n)
		}
		return resp, nil
	})

	// XMLCollectionAccess sub-collection operations.
	e.handle(XMLCollectionAccess, ActCreateSubcollection, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		if err := cr.CreateSubcollection(body.FindText(NSDAIX, "CollectionName")); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return xmlutil.NewElement(NSDAIX, "CreateSubcollectionResponse"), nil
	})
	e.handle(XMLCollectionAccess, ActRemoveSubcollection, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		if err := cr.RemoveSubcollection(body.FindText(NSDAIX, "CollectionName")); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return xmlutil.NewElement(NSDAIX, "RemoveSubcollectionResponse"), nil
	})
	e.handle(XMLCollectionAccess, ActListSubcollections, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		names, err := cr.ListSubcollections()
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := xmlutil.NewElement(NSDAIX, "ListSubcollectionsResponse")
		for _, n := range names {
			resp.AddText(NSDAIX, "CollectionName", n)
		}
		return resp, nil
	})

	// Query interfaces.
	e.handle(XMLQueryAccess, ActXPathExecute, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		results, err := cr.XPathExecute(ctx, body.FindText(NSDAIX, "Expression"))
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIX, "XPathExecuteResponse")
		resp.AppendChild(daix.WrapResults(results))
		return resp, nil
	})
	e.handle(XMLQueryAccess, ActXQueryExecute, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		results, err := cr.XQueryExecute(ctx, body.FindText(NSDAIX, "Expression"))
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIX, "XQueryExecuteResponse")
		resp.AppendChild(daix.WrapResults(results))
		return resp, nil
	})
	e.handle(XMLQueryAccess, ActXUpdateExecute, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		mods := body.Find("", "modifications")
		if mods == nil {
			return nil, &core.InvalidExpressionFault{Detail: "XUpdateExecute requires an xupdate:modifications child"}
		}
		n, err := cr.XUpdateExecute(ctx, body.FindText(NSDAIX, "DocumentName"), mods)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIX, "XUpdateExecuteResponse")
		resp.AddText(NSDAIX, "NodesModified", fmt.Sprintf("%d", n))
		return resp, nil
	})

	// Factories (indirect access).
	e.handle(XMLFactory, ActXPathFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		return e.sequenceFactory(body, func(cr *daix.XMLCollectionResource, expr string, cfg *core.Configuration) (*daix.XMLSequenceResource, error) {
			return daix.XPathFactory(ctx, cr, e.target.svc, expr, cfg)
		}, "XPathExecuteFactoryResponse")
	})
	e.handle(XMLFactory, ActXQueryFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		return e.sequenceFactory(body, func(cr *daix.XMLCollectionResource, expr string, cfg *core.Configuration) (*daix.XMLSequenceResource, error) {
			return daix.XQueryFactory(ctx, cr, e.target.svc, expr, cfg)
		}, "XQueryExecuteFactoryResponse")
	})
	e.handle(XMLFactory, ActCollectionFactory, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		cr, err := e.resolveCollection(name)
		if err != nil {
			return nil, err
		}
		cfg, err := core.ParseConfiguration(body.Find(NSDAI, "ConfigurationDocument"))
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		derived, err := daix.CollectionFactory(ctx, cr, e.target.svc, body.FindText(NSDAIX, "CollectionName"), &cfg)
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		e.target.trackDerived(derived)
		resp := xmlutil.NewElement(NSDAIX, "CollectionFactoryResponse")
		resp.AppendChild(e.target.EPRFor(derived.AbstractName()).Element(NSDAI, "DataResourceAddress"))
		return resp, nil
	})

	// Sequence access.
	e.handle(XMLSequenceAccess, ActGetItems, func(ctx context.Context, body *xmlutil.Element) (*xmlutil.Element, error) {
		name, err := AbstractNameOf(body)
		if err != nil {
			return nil, err
		}
		sr, err := e.resolveSequence(name)
		if err != nil {
			return nil, err
		}
		start, err := intChild(body, NSDAIX, "StartPosition", 1)
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		count, err := intChild(body, NSDAIX, "Count", sr.ItemCount())
		if err != nil {
			return nil, &core.InvalidExpressionFault{Detail: err.Error()}
		}
		items, err := sr.GetItems(start, count)
		if err != nil {
			return nil, err
		}
		resp := xmlutil.NewElement(NSDAIX, "GetItemsResponse")
		resp.AppendChild(daix.WrapResults(items))
		return resp, nil
	})
}

// sequenceFactory shares the XPath/XQuery factory plumbing.
func (e *Endpoint) sequenceFactory(body *xmlutil.Element,
	run func(*daix.XMLCollectionResource, string, *core.Configuration) (*daix.XMLSequenceResource, error),
	respName string) (*xmlutil.Element, error) {
	name, err := AbstractNameOf(body)
	if err != nil {
		return nil, err
	}
	cr, err := e.resolveCollection(name)
	if err != nil {
		return nil, err
	}
	cfg, err := core.ParseConfiguration(body.Find(NSDAI, "ConfigurationDocument"))
	if err != nil {
		return nil, &core.InvalidExpressionFault{Detail: err.Error()}
	}
	derived, err := run(cr, body.FindText(NSDAIX, "Expression"), &cfg)
	if err != nil {
		return nil, err
	}
	e.target.trackDerived(derived)
	resp := xmlutil.NewElement(NSDAIX, respName)
	resp.AppendChild(e.target.EPRFor(derived.AbstractName()).Element(NSDAI, "DataResourceAddress"))
	return resp, nil
}

// wrapDAIXErr converts plain xmldb errors into DAIS faults while
// passing typed faults through.
func wrapDAIXErr(err error) error {
	if err == nil {
		return nil
	}
	if core.FaultName(err) != "" {
		return err
	}
	return &core.InvalidExpressionFault{Detail: err.Error()}
}
