package service

import (
	"context"
	"fmt"

	"dais/internal/core"
	"dais/internal/daix"
	"dais/internal/ops"
	"dais/internal/xmlutil"
)

// registerDAIX wires the WS-DAIX operations from their catalog specs.
func (e *Endpoint) registerDAIX() {
	// XMLCollectionAccess document operations.
	handleOp(e, ops.AddDocument, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.AddDocumentMsg) (*xmlutil.Element, error) {
		if err := res.AddDocument(req.DocumentName, req.Document); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return ops.AddDocument.NewResponse(), nil
	})
	handleOp(e, ops.GetDocument, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.DocMsg) (*xmlutil.Element, error) {
		doc, err := res.GetDocument(req.DocumentName)
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := ops.GetDocument.NewResponse()
		wrap := resp.Add(NSDAIX, "Document")
		wrap.AppendChild(doc)
		return resp, nil
	})
	handleOp(e, ops.RemoveDocument, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.DocMsg) (*xmlutil.Element, error) {
		if err := res.RemoveDocument(req.DocumentName); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return ops.RemoveDocument.NewResponse(), nil
	})
	handleOp(e, ops.ListDocuments, func(ctx context.Context, res *daix.XMLCollectionResource, _ *ops.Empty) (*xmlutil.Element, error) {
		names, err := res.ListDocuments()
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := ops.ListDocuments.NewResponse()
		for _, n := range names {
			resp.AddText(NSDAIX, "DocumentName", n)
		}
		return resp, nil
	})

	// XMLCollectionAccess sub-collection operations.
	handleOp(e, ops.CreateSubcollection, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.CollMsg) (*xmlutil.Element, error) {
		if err := res.CreateSubcollection(req.CollectionName); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return ops.CreateSubcollection.NewResponse(), nil
	})
	handleOp(e, ops.RemoveSubcollection, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.CollMsg) (*xmlutil.Element, error) {
		if err := res.RemoveSubcollection(req.CollectionName); err != nil {
			return nil, wrapDAIXErr(err)
		}
		return ops.RemoveSubcollection.NewResponse(), nil
	})
	handleOp(e, ops.ListSubcollections, func(ctx context.Context, res *daix.XMLCollectionResource, _ *ops.Empty) (*xmlutil.Element, error) {
		names, err := res.ListSubcollections()
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		resp := ops.ListSubcollections.NewResponse()
		for _, n := range names {
			resp.AddText(NSDAIX, "CollectionName", n)
		}
		return resp, nil
	})

	// Query interfaces.
	handleOp(e, ops.XPathExecute, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.ExprMsg) (*xmlutil.Element, error) {
		results, err := res.XPathExecute(ctx, req.Expression)
		if err != nil {
			return nil, err
		}
		resp := ops.XPathExecute.NewResponse()
		resp.AppendChild(daix.WrapResults(results))
		return resp, nil
	})
	handleOp(e, ops.XQueryExecute, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.ExprMsg) (*xmlutil.Element, error) {
		results, err := res.XQueryExecute(ctx, req.Expression)
		if err != nil {
			return nil, err
		}
		resp := ops.XQueryExecute.NewResponse()
		resp.AppendChild(daix.WrapResults(results))
		return resp, nil
	})
	handleOp(e, ops.XUpdateExecute, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.XUpdateMsg) (*xmlutil.Element, error) {
		n, err := res.XUpdateExecute(ctx, req.DocumentName, req.Modifications)
		if err != nil {
			return nil, err
		}
		resp := ops.XUpdateExecute.NewResponse()
		resp.AddText(NSDAIX, "NodesModified", fmt.Sprintf("%d", n))
		return resp, nil
	})

	// Factories (indirect access).
	handleFactory(e, ops.XPathExecuteFactory, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.SeqFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := daix.XPathFactory(ctx, res, target, req.Expression, req.Config)
		if err != nil {
			return nil, err
		}
		return derived, nil
	})
	handleFactory(e, ops.XQueryExecuteFactory, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.SeqFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := daix.XQueryFactory(ctx, res, target, req.Expression, req.Config)
		if err != nil {
			return nil, err
		}
		return derived, nil
	})
	handleFactory(e, ops.CollectionFactory, func(ctx context.Context, res *daix.XMLCollectionResource, req *ops.CollFactoryMsg, target *core.DataService) (core.DataResource, error) {
		derived, err := daix.CollectionFactory(ctx, res, target, req.CollectionName, req.Config)
		if err != nil {
			return nil, wrapDAIXErr(err)
		}
		return derived, nil
	})

	// Sequence access.
	handleOp(e, ops.GetItems, func(ctx context.Context, res *daix.XMLSequenceResource, req *ops.PageMsg) (*xmlutil.Element, error) {
		count := req.Count
		if !req.HasCount {
			count = res.ItemCount()
		}
		items, err := res.GetItems(req.Start, count)
		if err != nil {
			return nil, err
		}
		resp := ops.GetItems.NewResponse()
		resp.AppendChild(daix.WrapResults(items))
		return resp, nil
	})
}

// wrapDAIXErr converts plain xmldb errors into DAIS faults while
// passing typed faults through.
func wrapDAIXErr(err error) error {
	if err == nil {
		return nil
	}
	if core.FaultName(err) != "" {
		return err
	}
	return &core.InvalidExpressionFault{Detail: err.Error()}
}
