package service_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
)

// TestClientCancelAbortsSQLExecute cancels the consumer context while
// the HTTP exchange is in flight and expects the call to return
// promptly with the context error instead of waiting out the server.
func TestClientCancelAbortsSQLExecute(t *testing.T) {
	entered := make(chan struct{})
	unblock := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-unblock // hold the request open until the client gives up
	}))
	defer ts.Close()
	defer close(unblock)

	ctx, cancel := context.WithCancel(context.Background())
	c := client.New(nil)
	done := make(chan error, 1)
	go func() {
		_, err := c.SQLExecute(ctx, client.Ref(ts.URL, "urn:dais:any"), `SELECT 1`, nil, "")
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("request never reached the server")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("SQLExecute did not return after cancel")
	}
}

// TestClientDisconnectAbortsServerQuery cancels the consumer context
// mid-query and checks the abort propagates all the way into the
// server-side engine scan: the handler must come back with an error
// (the cancelled scan's fault) instead of finishing the join.
func TestClientDisconnectAbortsServerQuery(t *testing.T) {
	handlerDone := make(chan error, 1)
	serverIC := func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		resp, err := next(ctx, action, env)
		select {
		case handlerDone <- err:
		default:
		}
		return resp, err
	}
	eng := sqlengine.New("big")
	eng.MustExec(`CREATE TABLE nums (n INTEGER)`)
	eng.MustExec(`INSERT INTO nums VALUES (1)`)
	for i := 0; i < 10; i++ {
		eng.MustExec(`INSERT INTO nums SELECT n FROM nums`)
	}
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("slow", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithServerInterceptors(serverIC))
	ep.Register(res)
	startEndpoint(t, ep)

	ctx, cancel := context.WithCancel(context.Background())
	c := client.New(nil)
	ref := client.Ref(svc.Address(), res.AbstractName())
	clientDone := make(chan error, 1)
	go func() {
		_, err := c.SQLExecute(ctx, ref, `SELECT a.n FROM nums a JOIN nums b ON a.n = b.n`, nil, "")
		clientDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the request reach the scan
	cancel()
	if err := <-clientDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want context.Canceled", err)
	}
	select {
	case err := <-handlerDone:
		if err == nil {
			t.Fatal("server handler completed the join despite the disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server handler did not abort after client disconnect")
	}
}

// TestServerDeadlineFaultsLongScan runs a large cross join behind a
// server-side deadline interceptor and expects the engine's row-level
// cancellation to surface as a typed RequestTimeoutFault at the client.
func TestServerDeadlineFaultsLongScan(t *testing.T) {
	eng := sqlengine.New("big")
	eng.MustExec(`CREATE TABLE nums (n INTEGER)`)
	eng.MustExec(`INSERT INTO nums VALUES (1)`)
	for i := 0; i < 10; i++ { // 1024 rows -> a ~1M-pair join
		eng.MustExec(`INSERT INTO nums SELECT n FROM nums`)
	}
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("slow", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithServerInterceptors(soap.ServerTimeout(25*time.Millisecond)))
	ep.Register(res)
	startEndpoint(t, ep)

	c := client.New(nil)
	ref := client.Ref(svc.Address(), res.AbstractName())
	_, err := c.SQLExecute(context.Background(), ref, `SELECT a.n FROM nums a JOIN nums b ON a.n = b.n`, nil, "")
	var rtf *core.RequestTimeoutFault
	if !errors.As(err, &rtf) {
		t.Fatalf("err = %v, want *core.RequestTimeoutFault", err)
	}
}

// TestRequestIDPropagatesEndToEnd checks that the ID stamped by the
// client pipeline travels the SOAP header into the server handler's
// context and back on the response, observed through one custom
// interceptor on each side.
func TestRequestIDPropagatesEndToEnd(t *testing.T) {
	var serverSaw string
	serverIC := func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		serverSaw = soap.RequestIDFromContext(ctx)
		return next(ctx, action, env)
	}
	eng := sqlengine.New("hr")
	eng.MustExec(`CREATE TABLE emp (id INTEGER)`)
	res := dair.NewSQLDataResource(eng)
	svc := core.NewDataService("relational", core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	ep := service.NewEndpoint(svc, service.WithServerInterceptors(serverIC))
	ep.Register(res)
	startEndpoint(t, ep)

	var clientSent, clientEcho string
	clientIC := func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		clientSent = soap.RequestIDFromContext(ctx)
		resp, err := next(ctx, action, env)
		if resp != nil {
			clientEcho = soap.RequestIDOf(resp)
		}
		return resp, err
	}
	c := client.New(nil, clientIC)
	ref := client.Ref(svc.Address(), res.AbstractName())
	if _, err := c.SQLExecute(context.Background(), ref, `SELECT id FROM emp`, nil, ""); err != nil {
		t.Fatal(err)
	}
	if clientSent == "" {
		t.Fatal("client pipeline stamped no request ID")
	}
	if serverSaw != clientSent {
		t.Fatalf("server saw ID %q, client sent %q", serverSaw, clientSent)
	}
	if clientEcho != clientSent {
		t.Fatalf("response echoed ID %q, client sent %q", clientEcho, clientSent)
	}
}

// TestClientTimeoutInterceptorFaults wires a per-call deadline into the
// client pipeline and checks it bounds a slow exchange.
func TestClientTimeoutInterceptorFaults(t *testing.T) {
	unblock := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-unblock
	}))
	defer ts.Close()
	defer close(unblock)

	c := client.New(nil, soap.ClientTimeout(30*time.Millisecond))
	_, err := c.SQLExecute(context.Background(), client.Ref(ts.URL, "urn:dais:any"), `SELECT 1`, nil, "")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
