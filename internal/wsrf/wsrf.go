// Package wsrf implements the Web Services Resource Framework pieces
// the DAIS specifications layer on top of plain SOAP services (paper
// §5): WS-ResourceProperties for fine-grained access to a resource's
// property document, and WS-ResourceLifetime for soft-state lifetime
// management (scheduled termination plus explicit destroy).
//
// Without WSRF a DAIS consumer "can only retrieve the whole property
// document" and must destroy resources explicitly; with it, individual
// properties can be fetched or queried with XPath, and service-managed
// resources are reaped when their termination time passes. The paper's
// caveat — the data resource abstract name stays in the SOAP body
// either way — is enforced by the service layer, not here.
package wsrf

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

// Namespace URIs for the WSRF specifications.
const (
	NSRP = "http://docs.oasis-open.org/wsrf/rp-2"
	NSRL = "http://docs.oasis-open.org/wsrf/rl-2"
)

// Resource is any entity exposing a WSRF property document. The
// returned element's children are the individual resource properties.
type Resource interface {
	PropertyDocument() *xmlutil.Element
}

// Clock abstracts time for lifetime tests.
type Clock func() time.Time

// Registry tracks WS-Resources keyed by identifier (DAIS uses the data
// resource abstract name) and manages their lifetimes.
type Registry struct {
	mu        sync.Mutex
	entries   map[string]*entry
	clock     Clock
	onDestroy func(id string)
	created   int64
	destroyed int64

	reaperMu    sync.Mutex
	reaperStops []func()
	closeOnce   sync.Once
}

type entry struct {
	res         Resource
	created     time.Time
	termination time.Time // zero value = no scheduled termination
}

// Option configures a Registry.
type Option func(*Registry)

// WithClock substitutes the time source (tests).
func WithClock(c Clock) Option { return func(r *Registry) { r.clock = c } }

// WithDestroyCallback registers a hook invoked (outside the registry
// lock) whenever a resource is destroyed, explicitly or by the reaper.
func WithDestroyCallback(f func(id string)) Option {
	return func(r *Registry) { r.onDestroy = f }
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...Option) *Registry {
	r := &Registry{entries: map[string]*entry{}, clock: time.Now}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Add registers a resource. Adding an existing id replaces it but
// preserves nothing from the prior registration.
func (r *Registry) Add(id string, res Resource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[id] = &entry{res: res, created: r.clock()}
	r.created++
}

// AddWithTermination registers a resource with its soft-state
// termination already scheduled, atomically. Lifetime-churn producers
// (factories minting short-TTL resources while the reaper runs) need
// this: a separate Add + SetTerminationTime pair has a window in which
// the resource is registered with infinite lifetime, so a producer
// crash mid-pair would leak it forever.
func (r *Registry) AddWithTermination(id string, res Resource, term time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[id] = &entry{res: res, created: r.clock(), termination: term}
	r.created++
}

// LiveCount reports the number of currently registered resources —
// the churn-test gauge that must return to baseline after every
// create/destroy cycle has resolved.
func (r *Registry) LiveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// CreatedCount reports how many registrations the registry has ever
// accepted (Add and AddWithTermination, including replacements).
// CreatedCount − DestroyedCount − LiveCount is the number of resources
// that left through Remove; churn tests assert the balance.
func (r *Registry) CreatedCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.created
}

// Remove unregisters a resource without firing the destroy callback or
// counting a destruction. The service layer uses it to keep the
// registry in sync when a resource is destroyed through the plain DAIS
// DestroyDataResource path rather than through WSRF.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.entries, id)
}

// Get returns the resource for an id.
func (r *Registry) Get(id string) (Resource, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, false
	}
	return e.res, true
}

// IDs returns the registered identifiers, sorted.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for id := range r.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// DestroyedCount reports how many resources have been destroyed over
// the registry's lifetime (explicitly or by the reaper).
func (r *Registry) DestroyedCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.destroyed
}

// propertyDocumentWithLifetime returns the resource's property document
// with the WS-ResourceLifetime CurrentTime and TerminationTime
// properties appended.
func (r *Registry) propertyDocumentWithLifetime(id string) (*xmlutil.Element, error) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return nil, &UnknownResourceError{ID: id}
	}
	term := e.termination
	res := e.res
	now := r.clock()
	r.mu.Unlock()

	doc := res.PropertyDocument().Clone()
	doc.AddText(NSRL, "CurrentTime", now.UTC().Format(time.RFC3339Nano))
	tt := doc.Add(NSRL, "TerminationTime")
	if term.IsZero() {
		tt.SetAttr("", "nil", "true")
	} else {
		tt.SetText(term.UTC().Format(time.RFC3339Nano))
	}
	return doc, nil
}

// UnknownResourceError identifies requests for unregistered resources.
type UnknownResourceError struct{ ID string }

func (e *UnknownResourceError) Error() string {
	return fmt.Sprintf("wsrf: unknown resource %q", e.ID)
}

// GetResourcePropertyDocument implements wsrf:GetResourcePropertyDocument.
func (r *Registry) GetResourcePropertyDocument(id string) (*xmlutil.Element, error) {
	return r.propertyDocumentWithLifetime(id)
}

// GetResourceProperty implements wsrf:GetResourceProperty — it returns
// every property child matching the qualified name.
func (r *Registry) GetResourceProperty(id string, space, local string) ([]*xmlutil.Element, error) {
	doc, err := r.propertyDocumentWithLifetime(id)
	if err != nil {
		return nil, err
	}
	matches := doc.FindAll(space, local)
	out := make([]*xmlutil.Element, len(matches))
	for i, m := range matches {
		out[i] = m.Clone()
	}
	return out, nil
}

// GetMultipleResourceProperties implements the batched variant.
func (r *Registry) GetMultipleResourceProperties(id string, names []xmlutil.Name) ([]*xmlutil.Element, error) {
	doc, err := r.propertyDocumentWithLifetime(id)
	if err != nil {
		return nil, err
	}
	var out []*xmlutil.Element
	for _, n := range names {
		for _, m := range doc.FindAll(n.Space, n.Local) {
			out = append(out, m.Clone())
		}
	}
	return out, nil
}

// QueryResourceProperties implements the XPath query dialect of
// wsrf:QueryResourceProperties against the property document.
func (r *Registry) QueryResourceProperties(id, expr string) ([]*xmlutil.Element, error) {
	doc, err := r.propertyDocumentWithLifetime(id)
	if err != nil {
		return nil, err
	}
	xp, err := xmldb.CompileXPath(expr)
	if err != nil {
		return nil, err
	}
	v, err := xp.Eval(doc)
	if err != nil {
		return nil, err
	}
	if v.Kind == xmldb.KindNodeSet {
		out := make([]*xmlutil.Element, len(v.Nodes))
		for i, n := range v.Nodes {
			out[i] = n.Clone()
		}
		return out, nil
	}
	// Scalar result: wrap it so callers always receive elements.
	res := xmlutil.NewElement(NSRP, "QueryResult")
	res.SetText(v.AsString())
	return []*xmlutil.Element{res}, nil
}

// SetTerminationTime implements wsrfl:SetTerminationTime. A nil
// requested time clears any scheduled termination (infinite lifetime).
// It returns the new termination time (nil for infinite) and the
// current time, as the response message requires.
func (r *Registry) SetTerminationTime(id string, requested *time.Time) (*time.Time, time.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, time.Time{}, &UnknownResourceError{ID: id}
	}
	now := r.clock()
	if requested == nil {
		e.termination = time.Time{}
		return nil, now, nil
	}
	if requested.Before(now) {
		// Setting a past time is an immediate-destruction request.
		e.termination = *requested
	} else {
		e.termination = *requested
	}
	t := e.termination
	return &t, now, nil
}

// TerminationTime reports the scheduled termination for an id (zero
// time when none).
func (r *Registry) TerminationTime(id string) (time.Time, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return time.Time{}, false
	}
	return e.termination, true
}

// Destroy implements wsrfl:Destroy: it unregisters the resource and
// fires the destroy callback.
func (r *Registry) Destroy(id string) error {
	r.mu.Lock()
	_, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		return &UnknownResourceError{ID: id}
	}
	delete(r.entries, id)
	r.destroyed++
	cb := r.onDestroy
	r.mu.Unlock()
	if cb != nil {
		cb(id)
	}
	return nil
}

// SweepExpired destroys every resource whose termination time has
// passed, returning the ids destroyed. The reaper calls this
// periodically; tests call it directly with a fake clock.
func (r *Registry) SweepExpired() []string {
	now := r.clock()
	r.mu.Lock()
	var doomed []string
	for id, e := range r.entries {
		if !e.termination.IsZero() && !e.termination.After(now) {
			doomed = append(doomed, id)
		}
	}
	for _, id := range doomed {
		delete(r.entries, id)
		r.destroyed++
	}
	cb := r.onDestroy
	r.mu.Unlock()
	sort.Strings(doomed)
	if cb != nil {
		for _, id := range doomed {
			cb(id)
		}
	}
	return doomed
}

// StartReaper launches a goroutine sweeping expired resources every
// interval. The returned stop function terminates it and waits for the
// final sweep to finish; it is idempotent. Close stops every reaper
// started this way.
func (r *Registry) StartReaper(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				r.SweepExpired()
			}
		}
	}()
	var once sync.Once
	stop = func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
	r.reaperMu.Lock()
	r.reaperStops = append(r.reaperStops, stop)
	r.reaperMu.Unlock()
	return stop
}

// Close shuts the registry's background machinery down: every reaper
// goroutine is stopped and waited for. Safe to call more than once and
// concurrently with StartReaper.
func (r *Registry) Close() {
	r.closeOnce.Do(func() {
		r.reaperMu.Lock()
		stops := append([]func(){}, r.reaperStops...)
		r.reaperStops = nil
		r.reaperMu.Unlock()
		for _, stop := range stops {
			stop()
		}
	})
}
