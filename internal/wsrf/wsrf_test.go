package wsrf

import (
	"sync"
	"testing"
	"time"

	"dais/internal/xmlutil"
)

const nsTest = "urn:dais:test"

type staticResource struct{ doc *xmlutil.Element }

func (s staticResource) PropertyDocument() *xmlutil.Element { return s.doc }

func testResource() staticResource {
	doc := xmlutil.NewElement(nsTest, "PropertyDocument")
	doc.AddText(nsTest, "DataResourceAbstractName", "urn:r1")
	doc.AddText(nsTest, "Readable", "true")
	doc.AddText(nsTest, "Writeable", "false")
	doc.AddText(nsTest, "DatasetMap", "urn:fmt:a")
	doc.AddText(nsTest, "DatasetMap", "urn:fmt:b")
	return staticResource{doc: doc}
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func newTestRegistry() (*Registry, *fakeClock, *[]string) {
	fc := &fakeClock{t: time.Date(2005, 9, 1, 0, 0, 0, 0, time.UTC)}
	var destroyed []string
	var mu sync.Mutex
	r := NewRegistry(WithClock(fc.now), WithDestroyCallback(func(id string) {
		mu.Lock()
		destroyed = append(destroyed, id)
		mu.Unlock()
	}))
	return r, fc, &destroyed
}

func TestGetResourcePropertyDocument(t *testing.T) {
	r, _, _ := newTestRegistry()
	r.Add("urn:r1", testResource())
	doc, err := r.GetResourcePropertyDocument("urn:r1")
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(nsTest, "Readable") != "true" {
		t.Fatal("property lost")
	}
	// Lifetime properties are appended.
	if doc.Find(NSRL, "CurrentTime") == nil {
		t.Fatal("CurrentTime missing")
	}
	tt := doc.Find(NSRL, "TerminationTime")
	if tt == nil || tt.AttrValue("", "nil") != "true" {
		t.Fatalf("TerminationTime = %v", tt)
	}
	if _, err := r.GetResourcePropertyDocument("urn:missing"); err == nil {
		t.Fatal("unknown resource should error")
	}
}

func TestGetResourceProperty(t *testing.T) {
	r, _, _ := newTestRegistry()
	r.Add("urn:r1", testResource())
	props, err := r.GetResourceProperty("urn:r1", nsTest, "DatasetMap")
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 2 || props[0].Text() != "urn:fmt:a" {
		t.Fatalf("props = %v", props)
	}
	none, err := r.GetResourceProperty("urn:r1", nsTest, "Nothing")
	if err != nil || len(none) != 0 {
		t.Fatalf("none = %v, %v", none, err)
	}
	// Returned elements are copies.
	props[0].SetText("mutated")
	again, _ := r.GetResourceProperty("urn:r1", nsTest, "DatasetMap")
	if again[0].Text() != "urn:fmt:a" {
		t.Fatal("registry shares state with callers")
	}
}

func TestGetMultipleResourceProperties(t *testing.T) {
	r, _, _ := newTestRegistry()
	r.Add("urn:r1", testResource())
	props, err := r.GetMultipleResourceProperties("urn:r1", []xmlutil.Name{
		{Space: nsTest, Local: "Readable"},
		{Space: nsTest, Local: "Writeable"},
		{Space: NSRL, Local: "CurrentTime"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 3 {
		t.Fatalf("props = %d", len(props))
	}
}

func TestQueryResourceProperties(t *testing.T) {
	r, _, _ := newTestRegistry()
	r.Add("urn:r1", testResource())
	nodes, err := r.QueryResourceProperties("urn:r1", "DatasetMap")
	if err != nil || len(nodes) != 2 {
		t.Fatalf("nodes = %v, %v", nodes, err)
	}
	scalar, err := r.QueryResourceProperties("urn:r1", "count(DatasetMap)")
	if err != nil || len(scalar) != 1 || scalar[0].Text() != "2" {
		t.Fatalf("scalar = %v, %v", scalar, err)
	}
	filtered, err := r.QueryResourceProperties("urn:r1", "DatasetMap[. = 'urn:fmt:b']")
	if err != nil || len(filtered) != 1 {
		t.Fatalf("filtered = %v, %v", filtered, err)
	}
	if _, err := r.QueryResourceProperties("urn:r1", "bad["); err == nil {
		t.Fatal("bad xpath should error")
	}
}

func TestExplicitDestroy(t *testing.T) {
	r, _, destroyed := newTestRegistry()
	r.Add("urn:r1", testResource())
	if err := r.Destroy("urn:r1"); err != nil {
		t.Fatal(err)
	}
	if len(*destroyed) != 1 || (*destroyed)[0] != "urn:r1" {
		t.Fatalf("destroyed = %v", *destroyed)
	}
	if err := r.Destroy("urn:r1"); err == nil {
		t.Fatal("double destroy should error")
	}
	if r.DestroyedCount() != 1 {
		t.Fatalf("count = %d", r.DestroyedCount())
	}
}

func TestScheduledTermination(t *testing.T) {
	r, fc, destroyed := newTestRegistry()
	r.Add("urn:r1", testResource())
	r.Add("urn:r2", testResource())
	r.Add("urn:keep", testResource())

	t1 := fc.now().Add(10 * time.Second)
	t2 := fc.now().Add(20 * time.Second)
	if _, _, err := r.SetTerminationTime("urn:r1", &t1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.SetTerminationTime("urn:r2", &t2); err != nil {
		t.Fatal(err)
	}

	if ids := r.SweepExpired(); len(ids) != 0 {
		t.Fatalf("premature sweep: %v", ids)
	}
	fc.advance(15 * time.Second)
	if ids := r.SweepExpired(); len(ids) != 1 || ids[0] != "urn:r1" {
		t.Fatalf("sweep = %v", ids)
	}
	fc.advance(15 * time.Second)
	if ids := r.SweepExpired(); len(ids) != 1 || ids[0] != "urn:r2" {
		t.Fatalf("sweep = %v", ids)
	}
	if len(*destroyed) != 2 {
		t.Fatalf("destroyed = %v", *destroyed)
	}
	if _, ok := r.Get("urn:keep"); !ok {
		t.Fatal("unscheduled resource was reaped")
	}
}

func TestSetTerminationTimeSemantics(t *testing.T) {
	r, fc, _ := newTestRegistry()
	r.Add("urn:r1", testResource())

	future := fc.now().Add(time.Hour)
	nt, cur, err := r.SetTerminationTime("urn:r1", &future)
	if err != nil || nt == nil || !nt.Equal(future) {
		t.Fatalf("set = %v, %v", nt, err)
	}
	if !cur.Equal(fc.now()) {
		t.Fatalf("current = %v", cur)
	}
	// Property document reflects it.
	doc, _ := r.GetResourcePropertyDocument("urn:r1")
	if doc.Find(NSRL, "TerminationTime").Text() == "" {
		t.Fatal("termination time not rendered")
	}
	// Clearing restores infinite lifetime.
	nt, _, err = r.SetTerminationTime("urn:r1", nil)
	if err != nil || nt != nil {
		t.Fatalf("clear = %v, %v", nt, err)
	}
	if tt, _ := r.TerminationTime("urn:r1"); !tt.IsZero() {
		t.Fatal("termination not cleared")
	}
	// Past time destroys on next sweep.
	past := fc.now().Add(-time.Second)
	if _, _, err := r.SetTerminationTime("urn:r1", &past); err != nil {
		t.Fatal(err)
	}
	if ids := r.SweepExpired(); len(ids) != 1 {
		t.Fatalf("sweep = %v", ids)
	}
	if _, _, err := r.SetTerminationTime("urn:r1", &future); err == nil {
		t.Fatal("destroyed resource should be unknown")
	}
}

func TestReaperGoroutine(t *testing.T) {
	fc := &fakeClock{t: time.Now()}
	r := NewRegistry(WithClock(fc.now))
	r.Add("urn:r1", testResource())
	past := fc.now().Add(-time.Second)
	r.SetTerminationTime("urn:r1", &past)

	stop := r.StartReaper(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := r.Get("urn:r1"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper did not collect expired resource")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestIDsSorted(t *testing.T) {
	r, _, _ := newTestRegistry()
	for _, id := range []string{"urn:c", "urn:a", "urn:b"} {
		r.Add(id, testResource())
	}
	ids := r.IDs()
	if len(ids) != 3 || ids[0] != "urn:a" || ids[2] != "urn:c" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestConcurrentRegistryUse(t *testing.T) {
	r, fc, _ := newTestRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a'+i)) + ":res"
			for j := 0; j < 50; j++ {
				r.Add(id, testResource())
				tt := fc.now().Add(time.Duration(j) * time.Millisecond)
				r.SetTerminationTime(id, &tt)
				r.GetResourcePropertyDocument(id)
				r.SweepExpired()
			}
		}(i)
	}
	wg.Wait()
}
