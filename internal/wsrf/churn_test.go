package wsrf

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dais/internal/xmlutil"
)

type churnResource struct{ id string }

func (c *churnResource) PropertyDocument() *xmlutil.Element {
	e := xmlutil.NewElement("urn:churn", "Props")
	e.AddText("urn:churn", "ID", c.id)
	return e
}

// churnCycles returns the create/destroy cycle count: 100k by default
// (the soft-state capacity claim is about sustained churn, and the
// registry path is cheap enough to prove it on every run), scalable
// via DAIS_CHURN_CYCLES.
func churnCycles(t *testing.T) int {
	if v := os.Getenv("DAIS_CHURN_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DAIS_CHURN_CYCLES=%q", v)
		}
		return n
	}
	return 100_000
}

// TestChurnRegistryLifetime drives 100k+ short-TTL create/destroy
// cycles against the registry while the reaper sweeps concurrently
// (run under -race via make chaos / make race). Producers register
// resources whose termination is already due or imminently due, and a
// fraction race the reaper with an explicit Destroy. Afterwards:
//
//   - the live-resource count returns to the pre-churn baseline,
//   - every explicit Destroy either succeeded or failed with the typed
//     *UnknownResourceError (the reaper won) — any other error is a
//     destroy-after-reap misclassification,
//   - created == destroyed: nothing leaked, nothing double-counted.
func TestChurnRegistryLifetime(t *testing.T) {
	cycles := churnCycles(t)
	reg := NewRegistry()
	defer reg.Close()
	stop := reg.StartReaper(500 * time.Microsecond)
	defer stop()

	baseline := reg.LiveCount()
	createdBefore, destroyedBefore := reg.CreatedCount(), reg.DestroyedCount()

	workers := 8
	perWorker := cycles / workers
	var destroyWon, reaperWon, misclassified atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(1000 + w)))
			now := time.Now
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("urn:churn:%d:%d", w, i)
				ttl := time.Duration(r.Intn(2000)) * time.Microsecond
				reg.AddWithTermination(id, &churnResource{id: id}, now().Add(ttl))
				if r.Intn(2) == 0 {
					// Half the cycles race the reaper with an explicit
					// destroy; losing that race must surface as the
					// typed unknown-resource error, nothing else.
					switch err := reg.Destroy(id); {
					case err == nil:
						destroyWon.Add(1)
					default:
						var unknown *UnknownResourceError
						if errors.As(err, &unknown) {
							reaperWon.Add(1)
						} else {
							misclassified.Add(1)
							t.Errorf("destroy %s: misclassified error %T: %v", id, err, err)
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Let every remaining TTL pass, then sweep deterministically.
	time.Sleep(3 * time.Millisecond)
	reg.SweepExpired()

	if live := reg.LiveCount(); live != baseline {
		t.Errorf("leaked resources: live %d, baseline %d", live, baseline)
	}
	created := reg.CreatedCount() - createdBefore
	destroyed := reg.DestroyedCount() - destroyedBefore
	if want := int64(workers * perWorker); created != want {
		t.Errorf("created %d, want %d", created, want)
	}
	if created != destroyed {
		t.Errorf("churn imbalance: created %d, destroyed %d (leak or double-destroy)", created, destroyed)
	}
	if misclassified.Load() != 0 {
		t.Errorf("%d destroy-after-reap errors were not *UnknownResourceError", misclassified.Load())
	}
	// The race must actually have been exercised from both sides; a
	// reaper that never wins (or always wins) proves nothing.
	t.Logf("cycles=%d destroyWon=%d reaperWon=%d", created, destroyWon.Load(), reaperWon.Load())
	if destroyWon.Load() == 0 {
		t.Error("explicit destroy never won the race; churn not exercised")
	}

	// A destroyed id stays destroyed: re-destroy and property access
	// fail with the typed fault.
	if err := reg.Destroy("urn:churn:0:0"); err == nil {
		t.Error("re-destroy of reaped resource succeeded")
	} else {
		var unknown *UnknownResourceError
		if !errors.As(err, &unknown) {
			t.Errorf("re-destroy error %T, want *UnknownResourceError", err)
		}
	}
	if _, err := reg.GetResourcePropertyDocument("urn:churn:0:0"); err == nil {
		t.Error("property document of reaped resource still served")
	}
}
