package core

import (
	"context"
	"sort"
	"sync"

	"dais/internal/xmlutil"
)

// DataService is a service that "provides access to a data resource ...
// a data service may represent zero or more data resources" (paper §3).
// It owns the resource registry behind the WS-DAI core operations and
// the optional CoreResourceList interface.
type DataService struct {
	mu        sync.RWMutex
	name      string
	address   string // endpoint URL, used when minting EPRs
	resources map[string]DataResource
	// concurrent mirrors the ConcurrentAccess property. When false, a
	// semaphore serialises all operations through the service.
	concurrent bool
	gate       chan struct{}
	// configMaps advertises factory message -> interface associations.
	configMaps []ConfigurationMapEntry
	// onDestroy hooks observe resource destruction (the service layer
	// uses it to unregister WSRF resources).
	onDestroy []func(name string)
	// propCache holds the static portion of each resource's property
	// document (everything that cannot change after registration),
	// keyed by abstract name. Guarded by propMu, not mu, so cache fills
	// never contend with resource resolution.
	propMu    sync.Mutex
	propCache map[string][]*xmlutil.Element
}

// ServiceOption configures a DataService.
type ServiceOption func(*DataService)

// WithConcurrentAccess sets the ConcurrentAccess property. The default
// is true; with false the service serialises every request.
func WithConcurrentAccess(ok bool) ServiceOption {
	return func(s *DataService) { s.concurrent = ok }
}

// WithAddress records the service endpoint URL for EPR construction.
func WithAddress(url string) ServiceOption {
	return func(s *DataService) { s.address = url }
}

// WithConfigurationMap appends ConfigurationMap property entries.
func WithConfigurationMap(entries ...ConfigurationMapEntry) ServiceOption {
	return func(s *DataService) { s.configMaps = append(s.configMaps, entries...) }
}

// NewDataService creates an empty data service.
func NewDataService(name string, opts ...ServiceOption) *DataService {
	s := &DataService{
		name:       name,
		resources:  map[string]DataResource{},
		concurrent: true,
		gate:       make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name returns the service name.
func (s *DataService) Name() string { return s.name }

// Address returns the service endpoint URL ("" when unset).
func (s *DataService) Address() string { return s.address }

// SetAddress updates the endpoint URL (set when the HTTP listener
// starts).
func (s *DataService) SetAddress(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.address = url
}

// ConcurrentAccess reports the ConcurrentAccess property.
func (s *DataService) ConcurrentAccess() bool { return s.concurrent }

// ConfigurationMaps returns the advertised ConfigurationMap entries.
func (s *DataService) ConfigurationMaps() []ConfigurationMapEntry {
	return append([]ConfigurationMapEntry(nil), s.configMaps...)
}

// OnDestroy registers a destruction observer.
func (s *DataService) OnDestroy(f func(name string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onDestroy = append(s.onDestroy, f)
}

// Enter acquires the service for one operation; the returned func
// releases it. With ConcurrentAccess=true both are no-ops. This models
// the §4.2 ConcurrentAccess property: "a boolean indicating whether the
// data service supports concurrent access or not". When the context is
// cancelled (or its deadline expires) while waiting for the gate, Enter
// returns a ServiceBusyFault.
func (s *DataService) Enter(ctx context.Context) (func(), error) {
	if s.concurrent {
		return func() {}, nil
	}
	select {
	case s.gate <- struct{}{}:
		return func() { <-s.gate }, nil
	case <-ctx.Done():
		return nil, &ServiceBusyFault{}
	}
}

// AddResource registers a data resource with the service.
func (s *DataService) AddResource(r DataResource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources[r.AbstractName()] = r
}

// Resolve implements the CoreResourceList Resolve operation at the
// model level: it checks that the abstract name is known. The service
// layer wraps the result in an EPR whose reference parameters carry the
// name (paper §3).
func (s *DataService) Resolve(abstractName string) (DataResource, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.resources[abstractName]
	if !ok {
		return nil, &InvalidResourceNameFault{Name: abstractName}
	}
	return r, nil
}

// GetResourceList implements the CoreResourceList GetResourceList
// operation: "the list of data resources known to a data service"
// (paper §4.3), sorted for determinism.
func (s *DataService) GetResourceList() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.resources))
	for n := range s.resources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DestroyDataResource implements the WS-DAI operation of the same name:
// it "destroys the relationship between the data service and the data
// resource" (paper §4.3). Service-managed resources release their data;
// externally managed data remains in place.
func (s *DataService) DestroyDataResource(ctx context.Context, abstractName string) error {
	if err := ctx.Err(); err != nil {
		return &RequestTimeoutFault{Detail: err.Error()}
	}
	s.mu.Lock()
	r, ok := s.resources[abstractName]
	if !ok {
		s.mu.Unlock()
		return &InvalidResourceNameFault{Name: abstractName}
	}
	delete(s.resources, abstractName)
	observers := append([]func(string){}, s.onDestroy...)
	s.mu.Unlock()
	s.InvalidatePropertyDocument(abstractName)

	var err error
	if r.Management() == ServiceManaged {
		err = r.Release()
	}
	for _, f := range observers {
		f(abstractName)
	}
	return err
}

// GenericQuery implements the WS-DAI GenericQuery operation: it
// validates the language against the resource's GenericQueryLanguage
// properties and delegates to the resource.
func (s *DataService) GenericQuery(ctx context.Context, abstractName, languageURI, expression string) (*xmlutil.Element, error) {
	r, err := s.Resolve(abstractName)
	if err != nil {
		return nil, err
	}
	if err := CheckLanguage(r, languageURI); err != nil {
		return nil, err
	}
	if err := CheckReadable(r); err != nil {
		return nil, err
	}
	return r.GenericQuery(ctx, languageURI, expression)
}

// GetDataResourcePropertyDocument implements the WS-DAI operation: the
// whole property document for the named resource (paper §4.3 — finer
// granularity requires WSRF, see internal/wsrf).
func (s *DataService) GetDataResourcePropertyDocument(abstractName string) (*xmlutil.Element, error) {
	r, err := s.Resolve(abstractName)
	if err != nil {
		return nil, err
	}
	return s.BuildPropertyDocument(r), nil
}

// BuildPropertyDocument assembles the WS-DAI property document for a
// resource as Fig. 4 lays it out: the static properties
// (DataResourceAbstractName, ParentDataResource,
// DataResourceManagement, ConcurrentAccess, DatasetMap,
// ConfigurationMap, GenericQueryLanguage) followed by the configurable
// ones (DataResourceDescription, Readable, Writeable,
// TransactionInitiation, TransactionIsolation, Sensitivity) and any
// realisation extensions.
func (s *DataService) BuildPropertyDocument(r DataResource) *xmlutil.Element {
	doc := xmlutil.NewElement(NSDAI, "DataResourcePropertyDocument")
	// Static properties come from the per-resource cache. The cached
	// elements are shared read-only across documents and linked through
	// the Children slice directly (not AppendChild) so they are never
	// reparented — serialisation walks Children and ignores parents.
	for _, e := range s.staticPropertyElements(r) {
		doc.Children = append(doc.Children, e)
	}
	// Configurable properties.
	cfg := r.Configuration()
	if cfg.Description != "" {
		doc.AddText(NSDAI, "DataResourceDescription", cfg.Description)
	}
	doc.AddText(NSDAI, "Readable", boolStr(cfg.Readable))
	doc.AddText(NSDAI, "Writeable", boolStr(cfg.Writeable))
	doc.AddText(NSDAI, "TransactionInitiation", cfg.TransactionInitiation.String())
	doc.AddText(NSDAI, "TransactionIsolation", cfg.TransactionIsolation)
	doc.AddText(NSDAI, "Sensitivity", cfg.Sensitivity.String())
	// Realisation extensions.
	for _, e := range r.ExtendedProperties() {
		doc.AppendChild(e.Clone())
	}
	return doc
}

// staticPropertyElements returns the cached static portion of the
// property document for r, building and caching it on first use.
func (s *DataService) staticPropertyElements(r DataResource) []*xmlutil.Element {
	name := r.AbstractName()
	s.propMu.Lock()
	if els, ok := s.propCache[name]; ok {
		s.propMu.Unlock()
		return els
	}
	s.propMu.Unlock()
	els := s.buildStaticPropertyElements(r)
	s.propMu.Lock()
	if s.propCache == nil {
		s.propCache = map[string][]*xmlutil.Element{}
	}
	s.propCache[name] = els
	s.propMu.Unlock()
	return els
}

// buildStaticPropertyElements renders the static properties in the
// Fig. 4 order BuildPropertyDocument documents.
func (s *DataService) buildStaticPropertyElements(r DataResource) []*xmlutil.Element {
	var els []*xmlutil.Element
	text := func(local, value string) {
		e := xmlutil.NewElement(NSDAI, local)
		e.SetText(value)
		els = append(els, e)
	}
	text("DataResourceAbstractName", r.AbstractName())
	parent := xmlutil.NewElement(NSDAI, "ParentDataResource")
	if p := r.ParentName(); p != "" {
		parent.SetText(p)
	}
	els = append(els, parent)
	text("DataResourceManagement", r.Management().String())
	text("ConcurrentAccess", boolStr(s.concurrent))
	for _, f := range r.DatasetFormats() {
		dm := xmlutil.NewElement(NSDAI, "DatasetMap")
		dm.AddText(NSDAI, "MessageFormat", f)
		els = append(els, dm)
	}
	for _, m := range s.configMaps {
		els = append(els, m.Element())
	}
	for _, l := range r.QueryLanguages() {
		text("GenericQueryLanguage", l)
	}
	return els
}

// InvalidatePropertyDocument drops the cached static property elements
// for the named resource. The WSRF property-write path and resource
// destruction call it so a rebuilt document never serves stale state.
func (s *DataService) InvalidatePropertyDocument(abstractName string) {
	s.propMu.Lock()
	delete(s.propCache, abstractName)
	s.propMu.Unlock()
}
