// Package core implements the WS-DAI model: data resources with
// abstract names, data services that expose them, the property
// document describing the data service / data resource relationship,
// and the core operations every realisation inherits
// (GetDataResourcePropertyDocument, GenericQuery, DestroyDataResource)
// plus the optional CoreResourceList (GetResourceList, Resolve).
//
// The WS-DAIR and WS-DAIX realisations (internal/dair, internal/daix)
// extend these types with model-specific properties and operations, as
// the specifications prescribe (paper §4.1: "The WS-DAI specification
// defines a set of core properties and operations that are independent
// of any particular data model ... These are then extended by
// realisations").
package core

import (
	"context"
	"fmt"
	"time"
)

// The DAIS fault taxonomy. Service layers map these to SOAP faults
// with the matching detail element names.
type (
	// InvalidResourceNameFault reports an unknown data resource
	// abstract name.
	InvalidResourceNameFault struct{ Name string }
	// InvalidLanguageFault reports a query language the resource does
	// not accept.
	InvalidLanguageFault struct{ Language string }
	// InvalidDatasetFormatFault reports an unsupported DataFormatURI.
	InvalidDatasetFormatFault struct{ Format string }
	// NotAuthorizedFault reports a read of a non-readable resource or a
	// write to a non-writeable one.
	NotAuthorizedFault struct{ Reason string }
	// InvalidExpressionFault reports a malformed query expression.
	InvalidExpressionFault struct{ Detail string }
	// ServiceBusyFault reports that the service cannot accept the
	// request: ConcurrentAccess=false with a request in flight, or the
	// admission gate shedding load above its in-flight caps. Reason
	// refines the message; RetryAfter is the pacing hint the service
	// layer writes as (and the consumer parses back from) the HTTP
	// Retry-After header.
	ServiceBusyFault struct {
		Reason     string
		RetryAfter time.Duration
	}
	// RequestTimeoutFault reports that a request's deadline expired (or
	// its context was cancelled) before the operation completed.
	RequestTimeoutFault struct{ Detail string }
)

func (f *InvalidResourceNameFault) Error() string {
	return fmt.Sprintf("dais: InvalidResourceNameFault: unknown data resource %q", f.Name)
}

func (f *InvalidLanguageFault) Error() string {
	return fmt.Sprintf("dais: InvalidLanguageFault: unsupported query language %q", f.Language)
}

func (f *InvalidDatasetFormatFault) Error() string {
	return fmt.Sprintf("dais: InvalidDatasetFormatFault: unsupported dataset format %q", f.Format)
}

func (f *NotAuthorizedFault) Error() string {
	return fmt.Sprintf("dais: NotAuthorizedFault: %s", f.Reason)
}

func (f *InvalidExpressionFault) Error() string {
	return fmt.Sprintf("dais: InvalidExpressionFault: %s", f.Detail)
}

func (f *ServiceBusyFault) Error() string {
	if f.Reason != "" {
		return "dais: ServiceBusyFault: " + f.Reason
	}
	return "dais: ServiceBusyFault: service does not support concurrent access"
}

func (f *RequestTimeoutFault) Error() string {
	if f.Detail == "" {
		return "dais: RequestTimeoutFault: request deadline expired"
	}
	return fmt.Sprintf("dais: RequestTimeoutFault: %s", f.Detail)
}

// TimeoutFault returns the typed timeout fault when the request context
// has expired, and nil while it is still live. Realisations call it at
// operation entry instead of hand-rolling the ctx.Err() check.
func TimeoutFault(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return &RequestTimeoutFault{Detail: err.Error()}
	}
	return nil
}

// QueryFault maps an execution error to a DAIS fault: typed faults pass
// through, context expiry becomes a RequestTimeoutFault, and anything
// else an InvalidExpressionFault. It is the one place realisations turn
// backend errors into wire faults.
func QueryFault(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if FaultName(err) != "" {
		return err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return &RequestTimeoutFault{Detail: ctxErr.Error()}
	}
	return &InvalidExpressionFault{Detail: err.Error()}
}

// FaultName returns the DAIS fault element name for a typed fault, or
// "" for other errors. The service layer uses it to build fault detail
// elements.
func FaultName(err error) string {
	switch err.(type) {
	case *InvalidResourceNameFault:
		return "InvalidResourceNameFault"
	case *InvalidLanguageFault:
		return "InvalidLanguageFault"
	case *InvalidDatasetFormatFault:
		return "InvalidDatasetFormatFault"
	case *NotAuthorizedFault:
		return "NotAuthorizedFault"
	case *InvalidExpressionFault:
		return "InvalidExpressionFault"
	case *ServiceBusyFault:
		return "ServiceBusyFault"
	case *RequestTimeoutFault:
		return "RequestTimeoutFault"
	}
	return ""
}
