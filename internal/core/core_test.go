package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dais/internal/xmlutil"
)

// fakeResource is a minimal DataResource for core-level tests.
type fakeResource struct {
	BaseResource
	langs    []string
	formats  []string
	released bool
	mu       sync.Mutex
}

func (f *fakeResource) QueryLanguages() []string { return f.langs }
func (f *fakeResource) DatasetFormats() []string { return f.formats }

func (f *fakeResource) GenericQuery(_ context.Context, lang, expr string) (*xmlutil.Element, error) {
	e := xmlutil.NewElement(NSDAI, "Result")
	e.SetText(lang + ":" + expr)
	return e, nil
}

func (f *fakeResource) Release() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.released = true
	return nil
}

func (f *fakeResource) wasReleased() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.released
}

func newFake(name string, mgmt Management) *fakeResource {
	return &fakeResource{
		BaseResource: BaseResource{
			Name:   name,
			Mgmt:   mgmt,
			Config: Configuration{Readable: true, Writeable: true, TransactionIsolation: "READ COMMITTED"},
		},
		langs:   []string{"urn:sql"},
		formats: []string{"urn:fmt:x"},
	}
}

func TestAbstractNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		n := NewAbstractName("sql")
		if !strings.HasPrefix(n, "urn:dais:sql:") {
			t.Fatalf("name = %q", n)
		}
		if seen[n] {
			t.Fatalf("duplicate %q", n)
		}
		seen[n] = true
	}
}

func TestResolveAndResourceList(t *testing.T) {
	s := NewDataService("svc")
	r1 := newFake("urn:b", ExternallyManaged)
	r2 := newFake("urn:a", ServiceManaged)
	s.AddResource(r1)
	s.AddResource(r2)

	got, err := s.Resolve("urn:b")
	if err != nil || got != DataResource(r1) {
		t.Fatalf("resolve = %v, %v", got, err)
	}
	var inf *InvalidResourceNameFault
	if _, err := s.Resolve("urn:missing"); !errors.As(err, &inf) {
		t.Fatalf("err = %v", err)
	}
	list := s.GetResourceList()
	if len(list) != 2 || list[0] != "urn:a" || list[1] != "urn:b" {
		t.Fatalf("list = %v", list)
	}
}

func TestDestroySemantics(t *testing.T) {
	s := NewDataService("svc")
	ext := newFake("urn:ext", ExternallyManaged)
	svc := newFake("urn:svc", ServiceManaged)
	s.AddResource(ext)
	s.AddResource(svc)

	var notified []string
	s.OnDestroy(func(n string) { notified = append(notified, n) })

	if err := s.DestroyDataResource(context.Background(), "urn:ext"); err != nil {
		t.Fatal(err)
	}
	if ext.wasReleased() {
		t.Fatal("externally managed data must remain in place")
	}
	if err := s.DestroyDataResource(context.Background(), "urn:svc"); err != nil {
		t.Fatal(err)
	}
	if !svc.wasReleased() {
		t.Fatal("service managed data must be released")
	}
	if len(notified) != 2 {
		t.Fatalf("notified = %v", notified)
	}
	if err := s.DestroyDataResource(context.Background(), "urn:ext"); err == nil {
		t.Fatal("destroyed resource should be unknown")
	}
	if len(s.GetResourceList()) != 0 {
		t.Fatal("resources remain listed")
	}
}

func TestGenericQueryValidation(t *testing.T) {
	s := NewDataService("svc")
	r := newFake("urn:r", ExternallyManaged)
	s.AddResource(r)

	res, err := s.GenericQuery(context.Background(), "urn:r", "urn:sql", "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Text() != "urn:sql:SELECT 1" {
		t.Fatalf("res = %q", res.Text())
	}
	var ilf *InvalidLanguageFault
	if _, err := s.GenericQuery(context.Background(), "urn:r", "urn:xquery", "x"); !errors.As(err, &ilf) {
		t.Fatalf("err = %v", err)
	}
	var irf *InvalidResourceNameFault
	if _, err := s.GenericQuery(context.Background(), "urn:none", "urn:sql", "x"); !errors.As(err, &irf) {
		t.Fatalf("err = %v", err)
	}
	// Unreadable resource refuses queries.
	r.Config.Readable = false
	var naf *NotAuthorizedFault
	if _, err := s.GenericQuery(context.Background(), "urn:r", "urn:sql", "x"); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

func TestPropertyDocumentShape(t *testing.T) {
	s := NewDataService("svc",
		WithConcurrentAccess(true),
		WithConfigurationMap(ConfigurationMapEntry{
			MessageName: "SQLExecuteFactoryRequest",
			PortType:    "dair:SQLResponseAccess",
			Default:     DefaultConfiguration(),
		}))
	r := newFake("urn:r", ServiceManaged)
	r.Parent = "urn:parent"
	r.Config.Description = "derived result"
	r.formats = []string{"urn:fmt:a", "urn:fmt:b"}
	s.AddResource(r)

	doc, err := s.GetDataResourcePropertyDocument("urn:r")
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText(NSDAI, "DataResourceAbstractName") != "urn:r" {
		t.Fatal("abstract name")
	}
	if doc.FindText(NSDAI, "ParentDataResource") != "urn:parent" {
		t.Fatal("parent")
	}
	if doc.FindText(NSDAI, "DataResourceManagement") != "ServiceManaged" {
		t.Fatal("management")
	}
	if doc.FindText(NSDAI, "ConcurrentAccess") != "true" {
		t.Fatal("concurrent access")
	}
	if len(doc.FindAll(NSDAI, "DatasetMap")) != 2 {
		t.Fatal("dataset maps")
	}
	cm := doc.Find(NSDAI, "ConfigurationMap")
	if cm == nil || cm.FindText(NSDAI, "MessageName") != "SQLExecuteFactoryRequest" {
		t.Fatalf("configuration map = %v", cm)
	}
	if doc.FindText(NSDAI, "GenericQueryLanguage") != "urn:sql" {
		t.Fatal("query language")
	}
	if doc.FindText(NSDAI, "DataResourceDescription") != "derived result" {
		t.Fatal("description")
	}
	for _, p := range []string{"Readable", "Writeable", "TransactionInitiation", "TransactionIsolation", "Sensitivity"} {
		if doc.Find(NSDAI, p) == nil {
			t.Fatalf("missing configurable property %s", p)
		}
	}
	// The document must serialise and reparse.
	if _, err := xmlutil.ParseString(xmlutil.MarshalString(doc)); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationRoundTrip(t *testing.T) {
	in := Configuration{
		Description:           "test resource",
		Readable:              true,
		Writeable:             true,
		TransactionInitiation: TransactionPerMessage,
		TransactionIsolation:  "SERIALIZABLE",
		Sensitivity:           Sensitive,
	}
	out, err := ParseConfiguration(in.Element())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestParseConfigurationDefaults(t *testing.T) {
	c, err := ParseConfiguration(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Readable || c.Writeable || c.TransactionInitiation != TransactionNotSupported {
		t.Fatalf("defaults = %+v", c)
	}
	// Partial document keeps defaults for missing fields.
	e := xmlutil.NewElement(NSDAI, "ConfigurationDocument")
	e.AddText(NSDAI, "Writeable", "true")
	c, err = ParseConfiguration(e)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Readable || !c.Writeable {
		t.Fatalf("partial = %+v", c)
	}
	// Invalid boolean errors.
	bad := xmlutil.NewElement(NSDAI, "ConfigurationDocument")
	bad.AddText(NSDAI, "Readable", "maybe")
	if _, err := ParseConfiguration(bad); err == nil {
		t.Fatal("expected error")
	}
}

func TestEnumParsers(t *testing.T) {
	for _, m := range []Management{ExternallyManaged, ServiceManaged} {
		got, err := ParseManagement(m.String())
		if err != nil || got != m {
			t.Fatalf("management %v: %v %v", m, got, err)
		}
	}
	for _, ti := range []TransactionInitiation{TransactionNotSupported, TransactionPerMessage, TransactionConsumerControlled} {
		got, err := ParseTransactionInitiation(ti.String())
		if err != nil || got != ti {
			t.Fatalf("initiation %v: %v %v", ti, got, err)
		}
	}
	for _, sv := range []Sensitivity{Insensitive, Sensitive} {
		got, err := ParseSensitivity(sv.String())
		if err != nil || got != sv {
			t.Fatalf("sensitivity %v: %v %v", sv, got, err)
		}
	}
	if _, err := ParseManagement("Nonsense"); err == nil {
		t.Fatal("bad management")
	}
	if _, err := ParseTransactionInitiation("Nonsense"); err == nil {
		t.Fatal("bad initiation")
	}
	if _, err := ParseSensitivity("Nonsense"); err == nil {
		t.Fatal("bad sensitivity")
	}
}

func TestFaultNames(t *testing.T) {
	cases := map[error]string{
		&InvalidResourceNameFault{Name: "x"}: "InvalidResourceNameFault",
		&InvalidLanguageFault{Language: "l"}: "InvalidLanguageFault",
		&InvalidDatasetFormatFault{}:         "InvalidDatasetFormatFault",
		&NotAuthorizedFault{Reason: "r"}:     "NotAuthorizedFault",
		&InvalidExpressionFault{Detail: "d"}: "InvalidExpressionFault",
		&ServiceBusyFault{}:                  "ServiceBusyFault",
		errors.New("plain"):                  "",
	}
	for err, want := range cases {
		if got := FaultName(err); got != want {
			t.Errorf("FaultName(%v) = %q, want %q", err, got, want)
		}
		if want != "" && !strings.Contains(err.Error(), want) {
			t.Errorf("Error() for %q should mention the fault name: %q", want, err.Error())
		}
	}
}

func TestConcurrentAccessGate(t *testing.T) {
	s := NewDataService("serial", WithConcurrentAccess(false))
	if s.ConcurrentAccess() {
		t.Fatal("expected serialised service")
	}
	var active, maxActive int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := s.Enter(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			active++
			if active > maxActive {
				maxActive = active
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if maxActive != 1 {
		t.Fatalf("maxActive = %d, want 1", maxActive)
	}

	// Concurrent service allows overlap.
	c := NewDataService("parallel")
	var cActive, cMax int
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Enter(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cActive++
			if cActive > cMax {
				cMax = cActive
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			cActive--
			mu.Unlock()
			release()
		}()
	}
	wg.Wait()
	if cMax < 2 {
		t.Fatalf("cMax = %d, expected overlap", cMax)
	}
}

func TestCheckHelpers(t *testing.T) {
	r := newFake("urn:r", ExternallyManaged)
	if err := CheckReadable(r); err != nil {
		t.Fatal(err)
	}
	if err := CheckWriteable(r); err != nil {
		t.Fatal(err)
	}
	r.Config.Readable = false
	r.Config.Writeable = false
	if err := CheckReadable(r); err == nil {
		t.Fatal("unreadable")
	}
	if err := CheckWriteable(r); err == nil {
		t.Fatal("unwriteable")
	}
	if err := CheckLanguage(r, "urn:sql"); err != nil {
		t.Fatal(err)
	}
	if err := CheckLanguage(r, "urn:other"); err == nil {
		t.Fatal("bad language")
	}
}

// TestPropertyDocumentCache checks the static-portion cache behind
// BuildPropertyDocument: repeat builds serve the same cached elements,
// invalidation forces a rebuild that picks up changed static inputs,
// and destroying a resource drops its cache entry.
func TestPropertyDocumentCache(t *testing.T) {
	s := NewDataService("svc")
	r := newFake("urn:cache", ExternallyManaged)
	s.AddResource(r)

	doc1, err := s.GetDataResourcePropertyDocument("urn:cache")
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := s.GetDataResourcePropertyDocument("urn:cache")
	if err != nil {
		t.Fatal(err)
	}
	if string(xmlutil.Marshal(doc1)) != string(xmlutil.Marshal(doc2)) {
		t.Fatal("repeat property documents differ")
	}
	// The static elements must come from the cache: same pointers.
	if doc1.Children[0] != doc2.Children[0] {
		t.Fatal("static property elements were rebuilt instead of cached")
	}

	// A configurable change shows up immediately — the cache only holds
	// the static portion.
	r.Config.Readable = false
	doc3, _ := s.GetDataResourcePropertyDocument("urn:cache")
	if got := doc3.FindText(NSDAI, "Readable"); got != "false" {
		t.Fatalf("Readable = %q after config change, want false", got)
	}

	// A static-input change is invisible until invalidation…
	r.langs = []string{"urn:sql", "urn:xpath"}
	doc4, _ := s.GetDataResourcePropertyDocument("urn:cache")
	if n := len(doc4.FindAll(NSDAI, "GenericQueryLanguage")); n != 1 {
		t.Fatalf("stale doc lists %d query languages, want cached 1", n)
	}
	s.InvalidatePropertyDocument("urn:cache")
	doc5, _ := s.GetDataResourcePropertyDocument("urn:cache")
	if n := len(doc5.FindAll(NSDAI, "GenericQueryLanguage")); n != 2 {
		t.Fatalf("rebuilt doc lists %d query languages, want 2", n)
	}

	// Destroy drops the cache entry so the name can be reused cleanly.
	if err := s.DestroyDataResource(context.Background(), "urn:cache"); err != nil {
		t.Fatal(err)
	}
	s.propMu.Lock()
	_, stale := s.propCache["urn:cache"]
	s.propMu.Unlock()
	if stale {
		t.Fatal("destroy left a stale property-cache entry")
	}
}
