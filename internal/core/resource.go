package core

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"
	"sync/atomic"

	"dais/internal/xmlutil"
)

// DataResource is "any entity that can act as a source or sink of data"
// (paper §3) as seen by a data service. Realisations (relational, XML,
// response, rowset, sequence, ...) implement it and add their own
// operations.
type DataResource interface {
	// AbstractName is the resource's unique, persistent URI name.
	AbstractName() string
	// ParentName is the abstract name of the resource this one was
	// derived from, or "" for non-derived resources.
	ParentName() string
	// Management classifies the resource as externally or service
	// managed.
	Management() Management
	// Configuration returns the resource's configurable properties.
	Configuration() Configuration
	// QueryLanguages lists the language URIs GenericQuery accepts.
	QueryLanguages() []string
	// DatasetFormats lists the DataFormatURIs the resource can return
	// data in (the DatasetMap property).
	DatasetFormats() []string
	// GenericQuery runs a query in one of the advertised languages and
	// returns the result as an XML element. It backs the WS-DAI
	// GenericQuery operation. Implementations observe ctx cancellation
	// at row/document granularity.
	GenericQuery(ctx context.Context, languageURI, expression string) (*xmlutil.Element, error)
	// ExtendedProperties returns realisation-specific property elements
	// appended to the WS-DAI property document (e.g. WS-DAIR's
	// CIMDescription and NumberOfRows).
	ExtendedProperties() []*xmlutil.Element
	// Release frees resources held by a service-managed resource when
	// its service relationship is destroyed. Externally managed
	// resources treat it as a no-op: "the data will probably remain in
	// place" (paper §4.3).
	Release() error
}

// nameCounter disambiguates generated names within a process.
var nameCounter atomic.Int64

// NewAbstractName mints a unique, persistent URI abstract name. DAIS
// "uses a URI to represent data resource's abstract names" (paper §3)
// pending the OGSA naming standardisation.
func NewAbstractName(kind string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("core: rand: " + err.Error())
	}
	return fmt.Sprintf("urn:dais:%s:%x-%d", kind, b, nameCounter.Add(1))
}

// Configurable is implemented by resources whose configurable WS-DAI
// properties may be changed after creation — the paper notes some
// properties "may be changed and may thus affect the behaviour of the
// service" (§3). The WSRF SetResourceProperties operation uses it.
type Configurable interface {
	UpdateConfiguration(func(*Configuration))
}

// BaseResource supplies the bookkeeping shared by every resource
// implementation; embed it and override what differs.
type BaseResource struct {
	Name   string
	Parent string
	Mgmt   Management
	Config Configuration

	cfgMu sync.RWMutex
}

// AbstractName implements DataResource.
func (b *BaseResource) AbstractName() string { return b.Name }

// ParentName implements DataResource.
func (b *BaseResource) ParentName() string { return b.Parent }

// Management implements DataResource.
func (b *BaseResource) Management() Management { return b.Mgmt }

// Configuration implements DataResource.
func (b *BaseResource) Configuration() Configuration {
	b.cfgMu.RLock()
	defer b.cfgMu.RUnlock()
	return b.Config
}

// UpdateConfiguration implements Configurable: f mutates the
// configuration under the resource's lock.
func (b *BaseResource) UpdateConfiguration(f func(*Configuration)) {
	b.cfgMu.Lock()
	defer b.cfgMu.Unlock()
	f(&b.Config)
}

// ExtendedProperties implements DataResource with no extensions.
func (b *BaseResource) ExtendedProperties() []*xmlutil.Element { return nil }

// Release implements DataResource as a no-op.
func (b *BaseResource) Release() error { return nil }

// CheckReadable returns a NotAuthorizedFault when the resource's
// configuration forbids reads.
func CheckReadable(r DataResource) error {
	if !r.Configuration().Readable {
		return &NotAuthorizedFault{Reason: fmt.Sprintf("data resource %s is not readable", r.AbstractName())}
	}
	return nil
}

// CheckWriteable returns a NotAuthorizedFault when the resource's
// configuration forbids writes.
func CheckWriteable(r DataResource) error {
	if !r.Configuration().Writeable {
		return &NotAuthorizedFault{Reason: fmt.Sprintf("data resource %s is not writeable", r.AbstractName())}
	}
	return nil
}

// CheckLanguage validates a GenericQuery language URI against the
// resource's advertised GenericQueryLanguage properties.
func CheckLanguage(r DataResource, languageURI string) error {
	for _, l := range r.QueryLanguages() {
		if l == languageURI {
			return nil
		}
	}
	return &InvalidLanguageFault{Language: languageURI}
}
