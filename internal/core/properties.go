package core

import (
	"fmt"
	"strings"

	"dais/internal/xmlutil"
)

// NSDAI is the WS-DAI namespace; property document elements and core
// message bodies live in it.
const NSDAI = "http://www.ggf.org/namespaces/2005/12/WS-DAI"

// Management distinguishes the two data resource categories of §3:
// externally managed resources exist independently of DAIS services;
// service managed resources live inside the middleware and die with
// their service relationship.
type Management int

// Management values.
const (
	ExternallyManaged Management = iota
	ServiceManaged
)

// String renders the property value used in property documents.
func (m Management) String() string {
	if m == ServiceManaged {
		return "ServiceManaged"
	}
	return "ExternallyManaged"
}

// ParseManagement decodes a property value.
func ParseManagement(s string) (Management, error) {
	switch strings.TrimSpace(s) {
	case "ExternallyManaged":
		return ExternallyManaged, nil
	case "ServiceManaged":
		return ServiceManaged, nil
	}
	return ExternallyManaged, fmt.Errorf("dais: unknown DataResourceManagement %q", s)
}

// TransactionInitiation enumerates the transactional behaviours of the
// WS-DAI TransactionInitiation property (paper §4.2): none, an atomic
// transaction per message, or a consumer-controlled context.
type TransactionInitiation int

// TransactionInitiation values.
const (
	TransactionNotSupported TransactionInitiation = iota
	TransactionPerMessage
	TransactionConsumerControlled
)

// String renders the property value.
func (t TransactionInitiation) String() string {
	switch t {
	case TransactionPerMessage:
		return "TransactionPerMessage"
	case TransactionConsumerControlled:
		return "TransactionConsumerControlled"
	}
	return "TransactionNotSupported"
}

// ParseTransactionInitiation decodes a property value.
func ParseTransactionInitiation(s string) (TransactionInitiation, error) {
	switch strings.TrimSpace(s) {
	case "TransactionNotSupported", "":
		return TransactionNotSupported, nil
	case "TransactionPerMessage":
		return TransactionPerMessage, nil
	case "TransactionConsumerControlled":
		return TransactionConsumerControlled, nil
	}
	return TransactionNotSupported, fmt.Errorf("dais: unknown TransactionInitiation %q", s)
}

// Sensitivity describes whether a derived data resource reflects later
// changes to its parent (paper §4.2).
type Sensitivity int

// Sensitivity values.
const (
	Insensitive Sensitivity = iota
	Sensitive
)

// String renders the property value.
func (s Sensitivity) String() string {
	if s == Sensitive {
		return "Sensitive"
	}
	return "Insensitive"
}

// ParseSensitivity decodes a property value.
func ParseSensitivity(v string) (Sensitivity, error) {
	switch strings.TrimSpace(v) {
	case "Insensitive", "":
		return Insensitive, nil
	case "Sensitive":
		return Sensitive, nil
	}
	return Insensitive, fmt.Errorf("dais: unknown Sensitivity %q", v)
}

// Configuration holds the configurable WS-DAI properties a consumer may
// set when a new data service / data resource relationship is created
// through a factory (paper §4.2).
type Configuration struct {
	Description           string
	Readable              bool
	Writeable             bool
	TransactionInitiation TransactionInitiation
	TransactionIsolation  string // e.g. "READ COMMITTED"
	Sensitivity           Sensitivity
}

// DefaultConfiguration is the configuration applied when a factory
// request carries no configuration document.
func DefaultConfiguration() Configuration {
	return Configuration{
		Readable:             true,
		Writeable:            false,
		TransactionIsolation: "READ COMMITTED",
	}
}

// Element renders the configuration as a ConfigurationDocument element.
func (c Configuration) Element() *xmlutil.Element {
	e := xmlutil.NewElement(NSDAI, "ConfigurationDocument")
	if c.Description != "" {
		e.AddText(NSDAI, "DataResourceDescription", c.Description)
	}
	e.AddText(NSDAI, "Readable", boolStr(c.Readable))
	e.AddText(NSDAI, "Writeable", boolStr(c.Writeable))
	e.AddText(NSDAI, "TransactionInitiation", c.TransactionInitiation.String())
	if c.TransactionIsolation != "" {
		e.AddText(NSDAI, "TransactionIsolation", c.TransactionIsolation)
	}
	e.AddText(NSDAI, "Sensitivity", c.Sensitivity.String())
	return e
}

// ParseConfiguration decodes a ConfigurationDocument element, applying
// defaults for absent fields. A nil element yields the defaults.
func ParseConfiguration(e *xmlutil.Element) (Configuration, error) {
	c := DefaultConfiguration()
	if e == nil {
		return c, nil
	}
	if v := e.FindText(NSDAI, "DataResourceDescription"); v != "" {
		c.Description = v
	}
	if el := e.Find(NSDAI, "Readable"); el != nil {
		b, err := parseBool(el.Text())
		if err != nil {
			return c, fmt.Errorf("dais: Readable: %w", err)
		}
		c.Readable = b
	}
	if el := e.Find(NSDAI, "Writeable"); el != nil {
		b, err := parseBool(el.Text())
		if err != nil {
			return c, fmt.Errorf("dais: Writeable: %w", err)
		}
		c.Writeable = b
	}
	if el := e.Find(NSDAI, "TransactionInitiation"); el != nil {
		ti, err := ParseTransactionInitiation(el.Text())
		if err != nil {
			return c, err
		}
		c.TransactionInitiation = ti
	}
	if v := e.FindText(NSDAI, "TransactionIsolation"); v != "" {
		c.TransactionIsolation = v
	}
	if el := e.Find(NSDAI, "Sensitivity"); el != nil {
		s, err := ParseSensitivity(el.Text())
		if err != nil {
			return c, err
		}
		c.Sensitivity = s
	}
	return c, nil
}

// ConfigurationMapEntry is one WS-DAI ConfigurationMap property value:
// it "associates an incoming message type with a valid requested access
// interface type and a default set of values for the configuration
// property document" (paper §4.2).
type ConfigurationMapEntry struct {
	// MessageName is the factory message the entry applies to, e.g.
	// "SQLExecuteFactoryRequest".
	MessageName string
	// PortType is the QName (rendered prefix:local) of the access
	// interface the created resource will support.
	PortType string
	// Default is the configuration applied when the request omits one.
	Default Configuration
}

// Element renders the entry as a ConfigurationMap property.
func (m ConfigurationMapEntry) Element() *xmlutil.Element {
	e := xmlutil.NewElement(NSDAI, "ConfigurationMap")
	e.AddText(NSDAI, "MessageName", m.MessageName)
	e.AddText(NSDAI, "PortTypeQName", m.PortType)
	e.AppendChild(m.Default.Element())
	return e
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func parseBool(s string) (bool, error) {
	switch strings.TrimSpace(s) {
	case "true", "1":
		return true, nil
	case "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("invalid boolean %q", s)
}
