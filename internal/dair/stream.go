package dair

import (
	"context"

	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
)

// This file wires the streaming delivery pipeline into the WS-DAIR
// resources: when a SQLDataResource is configured WithStreamDelivery,
// indirect-mode SQLExecute runs the engine's pull-based row stream
// into a rowset.Buffer and registers the derived resources against the
// buffer, so GetTuples starts answering while the engine is still
// producing and large results spill to the filestore instead of
// occupying RAM. The encoded pages are byte-identical to the
// materialised path: both resolve windows through the same clamp and
// feed the same codecs the same rows.

// WithStreamDelivery enables streaming result delivery for derived
// resources. The config's SpillName is ignored — each stream gets a
// unique name in the configured store — and its Hooks/MemCap/PageRows
// apply to every stream the resource starts.
func WithStreamDelivery(cfg rowset.BufferConfig) ResourceOption {
	return func(r *SQLDataResource) { r.streamCfg = &cfg }
}

// streamHandle pairs one engine row stream with the buffer draining
// it. The buffer owns the stream; the handle's reference counting is
// the buffer's.
type streamHandle struct {
	stream *sqlengine.RowStream
	buf    *rowset.Buffer
}

// startStream attempts streaming execution of the expression. It
// returns (nil, nil) when the statement or configuration is not
// eligible — the caller then takes the materialised path — and defers
// all execution errors to that path too, so error behaviour is
// identical with and without streaming:
//
//   - resource not configured for streaming
//   - Sensitive derived resources (they re-execute on every access;
//     a one-shot stream cannot satisfy that)
//   - consumer-controlled transactions (the sticky session must not
//     be occupied by a long-lived stream)
//   - anything but a SELECT (DML must not run twice, and only queries
//     produce rowsets worth streaming)
func (r *SQLDataResource) startStream(expression string, params []sqlengine.Value, cfg core.Configuration) (*streamHandle, error) {
	if r.streamCfg == nil || cfg.Sensitivity == core.Sensitive ||
		r.Config.TransactionInitiation == core.TransactionConsumerControlled {
		return nil, nil
	}
	prepared, err := r.wrapper.Prepare(expression)
	if err != nil {
		return nil, err
	}
	if st, _, perr := sqlengine.Parse(prepared); perr != nil {
		return nil, nil
	} else if _, ok := st.(*sqlengine.SelectStmt); !ok {
		return nil, nil
	}
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	sess := r.engine.NewSession()
	if iso, perr := sqlengine.ParseIsolationLevel(r.Config.TransactionIsolation); perr == nil {
		sess.SetIsolation(iso)
	}
	// The stream outlives the factory request that starts it — pages
	// are served to later GetTuples calls — so production runs under a
	// background context, like Sensitive refreshes do. Cancellation
	// comes from releasing the resource instead.
	stream, err := sess.ExecuteStream(context.Background(), prepared, params...)
	if err != nil {
		// Let the materialised path re-execute and fail with its
		// canonical fault; a failed SELECT has no side effects.
		return nil, nil
	}
	bcfg := *r.streamCfg
	bcfg.SpillName = core.NewAbstractName("rowset-spill")
	return &streamHandle{stream: stream, buf: rowset.NewBuffer(stream, bcfg)}, nil
}

// responseData waits for production to finish and assembles the
// response payload the materialised path would have produced: the full
// rowset (paged back from spill if needed) plus the communication
// area.
func (h *streamHandle) responseData(ctx context.Context) (*SQLResponseData, error) {
	set, err := h.buf.Materialise(ctx)
	if err != nil {
		if res, rerr := h.stream.Result(); rerr != nil && res != nil {
			return newResponseData(res), execFault(rerr)
		}
		return nil, execFault(err)
	}
	res, err := h.stream.Result()
	if err != nil {
		return newResponseData(res), execFault(err)
	}
	return &SQLResponseData{
		Items: []ResponseItem{{Kind: ItemRowset, Rowset: set}},
		CA:    res.CA,
	}, nil
}
