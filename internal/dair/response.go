package dair

import (
	"context"
	"fmt"
	"sync"

	"dais/internal/cim"
	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// ResponseItemKind classifies the entries of an SQL response: WS-DAIR's
// ResponseAccess interface exposes rowsets, update counts, output
// parameters and a return value (Fig. 6).
type ResponseItemKind int

// Response item kinds.
const (
	ItemRowset ResponseItemKind = iota
	ItemUpdateCount
	ItemReturnValue
	ItemOutputParameter
)

// ResponseItem is one entry of an SQL response.
type ResponseItem struct {
	Kind        ResponseItemKind
	Rowset      *sqlengine.ResultSet // ItemRowset
	UpdateCount int                  // ItemUpdateCount
	Value       sqlengine.Value      // ItemReturnValue / ItemOutputParameter
	Name        string               // ItemOutputParameter
}

// SQLResponseData is the in-memory outcome of executing a SQL
// expression: the ordered response items plus the SQL communication
// area. It is both the payload of a direct SQLExecute response and the
// content of a derived SQLResponse data resource.
type SQLResponseData struct {
	Items []ResponseItem
	CA    sqlengine.SQLCA
}

func newResponseData(res *sqlengine.Result) *SQLResponseData {
	d := &SQLResponseData{CA: res.CA}
	if res.Set != nil {
		d.Items = append(d.Items, ResponseItem{Kind: ItemRowset, Rowset: res.Set})
	} else if res.UpdateCount >= 0 {
		d.Items = append(d.Items, ResponseItem{Kind: ItemUpdateCount, UpdateCount: res.UpdateCount})
	}
	return d
}

// FirstRowset returns the first rowset item, or nil.
func (d *SQLResponseData) FirstRowset() *sqlengine.ResultSet {
	for _, it := range d.Items {
		if it.Kind == ItemRowset {
			return it.Rowset
		}
	}
	return nil
}

// UpdateCount returns the first update count, or -1.
func (d *SQLResponseData) UpdateCount() int {
	for _, it := range d.Items {
		if it.Kind == ItemUpdateCount {
			return it.UpdateCount
		}
	}
	return -1
}

// CommunicationAreaElement renders the SQLCommunicationArea element
// included in WS-DAIR responses (paper Fig. 2: "the SQL realisation
// extends the message pattern to also include information from the SQL
// communication area").
func (d *SQLResponseData) CommunicationAreaElement() *xmlutil.Element {
	e := xmlutil.NewElement(NSDAIR, "SQLCommunicationArea")
	e.AddText(NSDAIR, "SQLState", d.CA.SQLState)
	e.AddText(NSDAIR, "SQLCode", fmt.Sprintf("%d", d.CA.SQLCode))
	if d.CA.Message != "" {
		e.AddText(NSDAIR, "SQLMessage", d.CA.Message)
	}
	e.AddText(NSDAIR, "UpdateCount", fmt.Sprintf("%d", d.CA.UpdateCount))
	e.AddText(NSDAIR, "RowsFetched", fmt.Sprintf("%d", d.CA.RowsFetched))
	return e
}

// ParseCommunicationArea decodes a rendered SQLCommunicationArea.
func ParseCommunicationArea(e *xmlutil.Element) (sqlengine.SQLCA, error) {
	var ca sqlengine.SQLCA
	if e == nil || e.Name.Local != "SQLCommunicationArea" {
		return ca, fmt.Errorf("dair: not an SQLCommunicationArea element")
	}
	ca.SQLState = e.FindText(NSDAIR, "SQLState")
	ca.Message = e.FindText(NSDAIR, "SQLMessage")
	fmt.Sscanf(e.FindText(NSDAIR, "SQLCode"), "%d", &ca.SQLCode)
	fmt.Sscanf(e.FindText(NSDAIR, "UpdateCount"), "%d", &ca.UpdateCount)
	fmt.Sscanf(e.FindText(NSDAIR, "RowsFetched"), "%d", &ca.RowsFetched)
	return ca, nil
}

// SQLResponseResource is a derived, service-managed data resource
// created by SQLExecuteFactory: "a service managed data resource ...
// populated by the response of a SQL query" (paper §4.3). Its
// ResponseAccess operations expose the response items.
//
// The resource honours the WS-DAI Sensitivity property (§4.2): an
// Insensitive resource holds a snapshot taken at creation; a Sensitive
// one re-evaluates the originating expression against the parent on
// every access, so "changes in the parent data resource will be
// reflected in the derived data".
type SQLResponseResource struct {
	core.BaseResource
	mu      sync.RWMutex
	data    *SQLResponseData
	formats *rowset.Registry
	// refresh re-executes the originating expression; non-nil only for
	// Sensitive resources.
	refresh func() (*SQLResponseData, error)
	// stream backs a streaming resource: the response payload is still
	// being produced when the resource is registered, and ResponseAccess
	// operations materialise it (blocking until production completes)
	// only when first needed. Streaming rowset resources are carved off
	// the stream's buffer without materialising here at all.
	stream *streamHandle
}

// NewSQLResponseResource wraps response data as a derived resource.
func NewSQLResponseResource(parent string, data *SQLResponseData, cfg core.Configuration) *SQLResponseResource {
	return &SQLResponseResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("sqlresponse"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		data:    data,
		formats: rowset.NewRegistry(),
	}
}

// newStreamingResponseResource wraps a still-producing stream as a
// derived resource. The resource owns the handle's buffer reference.
func newStreamingResponseResource(parent string, h *streamHandle, cfg core.Configuration) *SQLResponseResource {
	return &SQLResponseResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("sqlresponse"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		formats: rowset.NewRegistry(),
		stream:  h,
	}
}

// currentData returns the response payload, re-evaluating it for
// Sensitive resources and materialising (once) for streaming ones.
func (r *SQLResponseResource) currentData() (*SQLResponseData, error) {
	r.mu.RLock()
	refresh, data, stream := r.refresh, r.data, r.stream
	r.mu.RUnlock()
	if refresh != nil {
		return refresh()
	}
	if data == nil && stream != nil {
		// Production runs under its own background context and always
		// terminates (the buffer drains the source unconditionally), so
		// this wait is bounded by the query itself.
		d, err := stream.responseData(context.Background())
		if err != nil {
			return d, err
		}
		r.mu.Lock()
		if r.data == nil {
			r.data = d
		}
		d = r.data
		r.mu.Unlock()
		return d, nil
	}
	return data, nil
}

// setRefresh installs the Sensitive re-evaluation hook.
func (r *SQLResponseResource) setRefresh(f func() (*SQLResponseData, error)) {
	r.mu.Lock()
	r.refresh = f
	r.mu.Unlock()
}

// Data exposes the response payload (the snapshot for Insensitive
// resources, a fresh evaluation for Sensitive ones).
func (r *SQLResponseResource) Data() *SQLResponseData {
	d, err := r.currentData()
	if err != nil {
		return &SQLResponseData{}
	}
	return d
}

// QueryLanguages implements core.DataResource: responses are not
// further queryable.
func (r *SQLResponseResource) QueryLanguages() []string { return nil }

// DatasetFormats implements core.DataResource.
func (r *SQLResponseResource) DatasetFormats() []string { return r.formats.URIs() }

// GenericQuery implements core.DataResource; responses reject it.
func (r *SQLResponseResource) GenericQuery(ctx context.Context, lang, expr string) (*xmlutil.Element, error) {
	return nil, &core.InvalidLanguageFault{Language: lang}
}

// ExtendedProperties implements core.DataResource with the
// SQLResponseDescription extensions of Fig. 4: item counts by kind.
func (r *SQLResponseResource) ExtendedProperties() []*xmlutil.Element {
	data, err := r.currentData()
	if err != nil {
		data = &SQLResponseData{}
	}
	counts := map[ResponseItemKind]int{}
	for _, it := range data.Items {
		counts[it.Kind]++
	}
	mk := func(name string, v int) *xmlutil.Element {
		e := xmlutil.NewElement(NSDAIR, name)
		e.SetText(fmt.Sprintf("%d", v))
		return e
	}
	return []*xmlutil.Element{
		mk("NumberOfSQLRowsets", counts[ItemRowset]),
		mk("NumberOfSQLUpdateCounts", counts[ItemUpdateCount]),
		mk("NumberOfSQLOutputParameters", counts[ItemOutputParameter]),
		mk("NumberOfSQLReturnValues", counts[ItemReturnValue]),
	}
}

// Release implements core.DataResource by dropping the payload and
// detaching from the parent. For a streaming resource this also drops
// the buffer reference, which cancels a still-running producer once
// every derived rowset resource has released its own reference.
func (r *SQLResponseResource) Release() error {
	r.mu.Lock()
	r.data = &SQLResponseData{}
	r.refresh = nil
	stream := r.stream
	r.stream = nil
	r.mu.Unlock()
	if stream != nil {
		stream.buf.Release()
	}
	return nil
}

// GetSQLRowset implements ResponseAccess.GetSQLRowset for the index-th
// rowset item (0-based).
func (r *SQLResponseResource) GetSQLRowset(index int) (*sqlengine.ResultSet, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	data, err := r.currentData()
	if err != nil {
		return nil, err
	}
	i := 0
	for _, it := range data.Items {
		if it.Kind == ItemRowset {
			if i == index {
				return it.Rowset, nil
			}
			i++
		}
	}
	return nil, &core.InvalidExpressionFault{Detail: fmt.Sprintf("response has no rowset %d", index)}
}

// GetSQLUpdateCount implements ResponseAccess.GetSQLUpdateCount.
func (r *SQLResponseResource) GetSQLUpdateCount(index int) (int, error) {
	if err := core.CheckReadable(r); err != nil {
		return 0, err
	}
	data, err := r.currentData()
	if err != nil {
		return 0, err
	}
	i := 0
	for _, it := range data.Items {
		if it.Kind == ItemUpdateCount {
			if i == index {
				return it.UpdateCount, nil
			}
			i++
		}
	}
	return 0, &core.InvalidExpressionFault{Detail: fmt.Sprintf("response has no update count %d", index)}
}

// GetSQLReturnValue implements ResponseAccess.GetSQLReturnValue.
func (r *SQLResponseResource) GetSQLReturnValue() (sqlengine.Value, error) {
	if err := core.CheckReadable(r); err != nil {
		return sqlengine.Null, err
	}
	data, err := r.currentData()
	if err != nil {
		return sqlengine.Null, err
	}
	for _, it := range data.Items {
		if it.Kind == ItemReturnValue {
			return it.Value, nil
		}
	}
	return sqlengine.Null, &core.InvalidExpressionFault{Detail: "response has no return value"}
}

// GetSQLOutputParameter implements ResponseAccess.GetSQLOutputParameter.
func (r *SQLResponseResource) GetSQLOutputParameter(name string) (sqlengine.Value, error) {
	if err := core.CheckReadable(r); err != nil {
		return sqlengine.Null, err
	}
	data, err := r.currentData()
	if err != nil {
		return sqlengine.Null, err
	}
	for _, it := range data.Items {
		if it.Kind == ItemOutputParameter && it.Name == name {
			return it.Value, nil
		}
	}
	return sqlengine.Null, &core.InvalidExpressionFault{Detail: fmt.Sprintf("response has no output parameter %q", name)}
}

// GetSQLCommunicationArea implements
// ResponseAccess.GetSQLCommunicationArea.
func (r *SQLResponseResource) GetSQLCommunicationArea() sqlengine.SQLCA {
	data, err := r.currentData()
	if err != nil {
		return sqlengine.SQLCA{SQLState: sqlengine.StateGeneral, SQLCode: -1, Message: err.Error()}
	}
	return data.CA
}

// GetSQLResponseItem implements ResponseAccess.GetSQLResponseItem: the
// index-th item of any kind.
func (r *SQLResponseResource) GetSQLResponseItem(index int) (ResponseItem, error) {
	if err := core.CheckReadable(r); err != nil {
		return ResponseItem{}, err
	}
	data, err := r.currentData()
	if err != nil {
		return ResponseItem{}, err
	}
	if index < 0 || index >= len(data.Items) {
		return ResponseItem{}, &core.InvalidExpressionFault{Detail: fmt.Sprintf("response has no item %d", index)}
	}
	return data.Items[index], nil
}

// SQLRowsetResource is a derived, service-managed resource holding one
// rowset in a chosen dataset format — the target of
// ResponseFactory.SQLRowsetFactory and the subject of the RowsetAccess
// interface (paper Fig. 5's web row set data resource). It is backed
// either by a materialised result set or, for streaming delivery, by
// the producing buffer: then GetTuples pages are carved out of the
// buffer (blocking while they overlap the unproduced tail, paging
// spilled rows back in) and encoded per request, byte-identically to
// the materialised path.
type SQLRowsetResource struct {
	core.BaseResource
	mu        sync.RWMutex
	set       *sqlengine.ResultSet // nil when buffer-backed
	buf       *rowset.Buffer       // nil when materialised
	formatURI string
	formats   *rowset.Registry
}

// NewSQLRowsetResource wraps a result set as a rowset resource in the
// given format (empty = SQLRowset default).
func NewSQLRowsetResource(parent string, set *sqlengine.ResultSet, formatURI string, cfg core.Configuration) (*SQLRowsetResource, error) {
	reg := rowset.NewRegistry()
	if _, err := reg.Lookup(formatURI); err != nil {
		return nil, &core.InvalidDatasetFormatFault{Format: formatURI}
	}
	if formatURI == "" {
		formatURI = rowset.FormatSQLRowset
	}
	return &SQLRowsetResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("sqlrowset"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		set:       set,
		formatURI: formatURI,
		formats:   reg,
	}, nil
}

// NewStreamingSQLRowsetResource wraps a producing buffer as a rowset
// resource. The caller must already hold a buffer reference for the
// resource (Retain); Release drops it.
func NewStreamingSQLRowsetResource(parent string, buf *rowset.Buffer, formatURI string, cfg core.Configuration) (*SQLRowsetResource, error) {
	reg := rowset.NewRegistry()
	if _, err := reg.Lookup(formatURI); err != nil {
		return nil, &core.InvalidDatasetFormatFault{Format: formatURI}
	}
	if formatURI == "" {
		formatURI = rowset.FormatSQLRowset
	}
	return &SQLRowsetResource{
		BaseResource: core.BaseResource{
			Name:   core.NewAbstractName("sqlrowset"),
			Parent: parent,
			Mgmt:   core.ServiceManaged,
			Config: cfg,
		},
		buf:       buf,
		formatURI: formatURI,
		formats:   reg,
	}, nil
}

// FormatURI returns the resource's dataset format.
func (r *SQLRowsetResource) FormatURI() string { return r.formatURI }

// RowCount returns the number of rows held. For a still-producing
// streaming resource this is the rows produced so far; use
// FinalRowCount to wait for the total.
func (r *SQLRowsetResource) RowCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.buf != nil {
		return r.buf.Produced()
	}
	return len(r.set.Rows)
}

// FinalRowCount blocks until the total row count is known (immediately
// for materialised resources) and returns it.
func (r *SQLRowsetResource) FinalRowCount(ctx context.Context) (int, error) {
	r.mu.RLock()
	buf := r.buf
	r.mu.RUnlock()
	if buf != nil {
		n, err := buf.FinalCount(ctx)
		if err != nil {
			return 0, execFault(err)
		}
		return n, nil
	}
	return r.RowCount(), nil
}

// QueryLanguages implements core.DataResource.
func (r *SQLRowsetResource) QueryLanguages() []string { return nil }

// DatasetFormats implements core.DataResource: only the chosen format.
func (r *SQLRowsetResource) DatasetFormats() []string { return []string{r.formatURI} }

// GenericQuery implements core.DataResource; rowsets reject it.
func (r *SQLRowsetResource) GenericQuery(ctx context.Context, lang, expr string) (*xmlutil.Element, error) {
	return nil, &core.InvalidLanguageFault{Language: lang}
}

// ExtendedProperties implements core.DataResource with the
// SQLRowsetDescription extensions: row count, format and the derived
// schema rendered via CIM. A still-producing streaming resource
// reports the rows produced so far.
func (r *SQLRowsetResource) ExtendedProperties() []*xmlutil.Element {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rows, cols := 0, []sqlengine.ResultColumn(nil)
	if r.buf != nil {
		rows, cols = r.buf.Produced(), r.buf.Columns()
	} else {
		rows, cols = len(r.set.Rows), r.set.Columns
	}
	n := xmlutil.NewElement(NSDAIR, "NumberOfRows")
	n.SetText(fmt.Sprintf("%d", rows))
	f := xmlutil.NewElement(NSDAIR, "RowsetFormat")
	f.SetText(r.formatURI)
	schema := xmlutil.NewElement(NSDAIR, "RowsetSchema")
	schema.AppendChild(cim.TableDescription("rowset", cols))
	return []*xmlutil.Element{n, f, schema}
}

// Release implements core.DataResource by dropping the rows (and, for
// a streaming resource, this resource's buffer reference).
func (r *SQLRowsetResource) Release() error {
	r.mu.Lock()
	buf := r.buf
	if buf != nil {
		r.set = &sqlengine.ResultSet{Columns: buf.Columns()}
		r.buf = nil
	} else {
		r.set = &sqlengine.ResultSet{Columns: r.set.Columns}
	}
	r.mu.Unlock()
	if buf != nil {
		buf.Release()
	}
	return nil
}

// GetTuples implements RowsetAccess.GetTuples(StartPosition, Count):
// the requested page encoded in the resource's dataset format.
// StartPosition is 1-based, matching Fig. 5's message signature. On a
// streaming resource a window overlapping the unproduced tail blocks
// (under ctx) until the rows exist, then encodes exactly the bytes the
// materialised path would have produced.
func (r *SQLRowsetResource) GetTuples(ctx context.Context, startPosition, count int) ([]byte, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	codec, err := r.formats.Lookup(r.formatURI)
	if err != nil {
		return nil, &core.InvalidDatasetFormatFault{Format: r.formatURI}
	}
	r.mu.RLock()
	if r.buf != nil {
		buf := r.buf
		r.mu.RUnlock()
		page, err := buf.Window(ctx, startPosition, count)
		if err != nil {
			return nil, execFault(err)
		}
		return codec.Encode(page)
	}
	// Encode the window straight out of the stored set (no per-page
	// ResultSet), holding the read lock so the rows cannot be swapped
	// out underneath the range encoder.
	defer r.mu.RUnlock()
	return rowset.EncodeWindow(codec, r.set, startPosition, count)
}

// GetTuplesSet is GetTuples without encoding, for in-process consumers.
func (r *SQLRowsetResource) GetTuplesSet(ctx context.Context, startPosition, count int) (*sqlengine.ResultSet, error) {
	if err := core.CheckReadable(r); err != nil {
		return nil, err
	}
	r.mu.RLock()
	if r.buf != nil {
		buf := r.buf
		r.mu.RUnlock()
		set, err := buf.Window(ctx, startPosition, count)
		if err != nil {
			return nil, execFault(err)
		}
		return set, nil
	}
	defer r.mu.RUnlock()
	return rowset.Slice(r.set, startPosition, count), nil
}
