package dair

import (
	"context"
	"fmt"
	"testing"

	"dais/internal/core"
	"dais/internal/filestore"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
)

func wideEngine(t testing.TB, rows int) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.New("wide")
	e.MustExec(`CREATE TABLE obs (id INTEGER PRIMARY KEY, station VARCHAR(32), reading DOUBLE)`)
	for i := 0; i < rows; i += 50 {
		stmt := "INSERT INTO obs VALUES "
		for j := i; j < i+50 && j < rows; j++ {
			if j > i {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 'st-%03d', %g)", j, j%7, float64(j)*0.25)
		}
		e.MustExec(stmt)
	}
	return e
}

// TestStreamingFactoryPagesMatchMaterialised is the integration half of
// the byte-identity requirement: the same query through a streaming
// resource and a plain materialised resource must produce identical
// GetTuples pages in every registered codec.
func TestStreamingFactoryPagesMatchMaterialised(t *testing.T) {
	const rows = 377
	for _, spill := range []bool{false, true} {
		name := "in-memory"
		if spill {
			name = "spilled"
		}
		t.Run(name, func(t *testing.T) {
			cfg := rowset.BufferConfig{PageRows: 32}
			var store *filestore.Store
			if spill {
				store = filestore.NewStore("spill")
				cfg.MemCap = 1 // force everything to disk
				cfg.Spill = store
			}
			streamSrc := NewSQLDataResource(wideEngine(t, rows), WithStreamDelivery(cfg))
			plainSrc := NewSQLDataResource(wideEngine(t, rows))
			ds := core.NewDataService("ds")
			const q = `SELECT id, station, reading FROM obs WHERE id >= 10`

			sresp, err := SQLExecuteFactory(context.Background(), streamSrc, ds, q, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sresp.stream == nil {
				t.Fatal("expected streaming delivery")
			}
			presp, err := SQLExecuteFactory(context.Background(), plainSrc, ds, q, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if presp.stream != nil {
				t.Fatal("unconfigured resource must not stream")
			}

			for _, format := range DefaultRowsetFormats() {
				srr, err := SQLRowsetFactory(context.Background(), sresp, ds, format, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				prr, err := SQLRowsetFactory(context.Background(), presp, ds, format, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, win := range [][2]int{{1, 40}, {33, 64}, {360, 100}, {1, rows}, {-3, 5}, {400, 2}} {
					got, err := srr.GetTuples(context.Background(), win[0], win[1])
					if err != nil {
						t.Fatalf("%s streaming GetTuples(%v): %v", format, win, err)
					}
					want, err := prr.GetTuples(context.Background(), win[0], win[1])
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Fatalf("%s window %v: streaming page differs from materialised", format, win)
					}
				}
				n, err := srr.FinalRowCount(context.Background())
				if err != nil || n != rows-10 {
					t.Fatalf("final count = %d, %v", n, err)
				}
			}
			if spill {
				if sresp.stream.buf.SpilledBytes() == 0 {
					t.Fatal("expected pages to spill")
				}
				if store.Count() == 0 {
					t.Fatal("spill store empty")
				}
			}

			// The response payload itself (materialised once, from the
			// buffer) must match the plain path too.
			sset, err := sresp.GetSQLRowset(0)
			if err != nil {
				t.Fatal(err)
			}
			pset, err := presp.GetSQLRowset(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(sset.Rows) != len(pset.Rows) {
				t.Fatalf("rows %d != %d", len(sset.Rows), len(pset.Rows))
			}
			if sresp.GetSQLCommunicationArea() != presp.GetSQLCommunicationArea() {
				t.Fatalf("CA %+v != %+v", sresp.GetSQLCommunicationArea(), presp.GetSQLCommunicationArea())
			}
		})
	}
}

func TestStreamingReleaseDropsSpill(t *testing.T) {
	store := filestore.NewStore("spill")
	src := NewSQLDataResource(wideEngine(t, 300),
		WithStreamDelivery(rowset.BufferConfig{PageRows: 16, MemCap: 1, Spill: store}))
	ds := core.NewDataService("ds")
	resp, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM obs`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SQLRowsetFactory(context.Background(), resp, ds, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.GetTuples(context.Background(), 1, 300); err != nil {
		t.Fatal(err)
	}
	if store.Count() == 0 {
		t.Fatal("expected spill file")
	}
	// Both holders must release before the spill file goes away.
	resp.Release()
	if store.Count() == 0 {
		t.Fatal("rowset still holds the buffer; spill must survive")
	}
	rr.Release()
	if store.Count() != 0 {
		t.Fatal("spill file leaked after last release")
	}
}

// TestStreamingFallbacks checks each ineligibility gate takes the
// materialised path — and, for DML, that the statement runs exactly
// once.
func TestStreamingFallbacks(t *testing.T) {
	store := filestore.NewStore("spill")
	cfg := rowset.BufferConfig{PageRows: 16, Spill: store, MemCap: 1 << 20}

	t.Run("sensitive", func(t *testing.T) {
		src := NewSQLDataResource(wideEngine(t, 20), WithStreamDelivery(cfg))
		ds := core.NewDataService("ds")
		c := core.DefaultConfiguration()
		c.Sensitivity = core.Sensitive
		resp, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM obs`, nil, &c)
		if err != nil {
			t.Fatal(err)
		}
		if resp.stream != nil {
			t.Fatal("sensitive resources must not stream")
		}
	})

	t.Run("dml runs once", func(t *testing.T) {
		src := NewSQLDataResource(wideEngine(t, 20), WithStreamDelivery(cfg))
		ds := core.NewDataService("ds")
		resp, err := SQLExecuteFactory(context.Background(), src, ds,
			`UPDATE obs SET reading = reading + 1 WHERE id = 0`, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.stream != nil {
			t.Fatal("DML must not stream")
		}
		n, err := resp.GetSQLUpdateCount(0)
		if err != nil || n != 1 {
			t.Fatalf("update count = %d, %v", n, err)
		}
		check, err := src.SQLExecute(context.Background(), `SELECT reading FROM obs WHERE id = 0`, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := check.FirstRowset().Rows[0][0].F; got != 1 {
			t.Fatalf("reading = %g: DML executed %g times", got, got)
		}
	})

	t.Run("query errors use canonical faults", func(t *testing.T) {
		src := NewSQLDataResource(wideEngine(t, 20), WithStreamDelivery(cfg))
		ds := core.NewDataService("ds")
		_, serr := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM missing`, nil, nil)
		plain := NewSQLDataResource(wideEngine(t, 20))
		_, perr := SQLExecuteFactory(context.Background(), plain, ds, `SELECT id FROM missing`, nil, nil)
		if serr == nil || perr == nil {
			t.Fatalf("errs = %v, %v", serr, perr)
		}
		if fmt.Sprintf("%T", serr) != fmt.Sprintf("%T", perr) {
			t.Fatalf("fault types diverge: %T vs %T", serr, perr)
		}
	})

	t.Run("bounded rowset copy", func(t *testing.T) {
		src := NewSQLDataResource(wideEngine(t, 100), WithStreamDelivery(cfg))
		ds := core.NewDataService("ds")
		resp, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM obs`, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := SQLRowsetFactory(context.Background(), resp, ds, "", 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rr.RowCount() != 7 {
			t.Fatalf("rows = %d", rr.RowCount())
		}
	})
}

// TestStreamingTuplesWhileProducing exercises the headline behaviour:
// GetTuples answers from the front of the buffer while the engine is
// still producing the tail.
func TestStreamingTuplesWhileProducing(t *testing.T) {
	src := NewSQLDataResource(wideEngine(t, 5000),
		WithStreamDelivery(rowset.BufferConfig{PageRows: 64}))
	ds := core.NewDataService("ds")
	resp, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT id, station FROM obs`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SQLRowsetFactory(context.Background(), resp, ds, rowset.FormatSQLRowset, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First page: available immediately (or after a short wait), long
	// before 5000 rows exist.
	page, err := rr.GetTuples(context.Background(), 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err := (rowset.SQLRowsetCodec{}).Decode(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 10 || set.Rows[0][0].I != 0 {
		t.Fatalf("first page = %+v", set.Rows)
	}
	// Tail page: blocks until produced, then completes.
	page, err = rr.GetTuples(context.Background(), 4991, 10)
	if err != nil {
		t.Fatal(err)
	}
	set, err = (rowset.SQLRowsetCodec{}).Decode(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 10 || set.Rows[9][0].I != 4999 {
		t.Fatalf("tail page = %+v", set.Rows)
	}
}
