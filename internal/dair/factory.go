package dair

import (
	"context"

	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
)

// PortType QNames a factory request may ask the created resource to be
// served through (paper Fig. 3: "the QName of the port type with which
// a data service will provide access to the resulting data").
const (
	PortTypeSQLAccess         = "dair:SQLAccess"
	PortTypeSQLResponseAccess = "dair:SQLResponseAccess"
	PortTypeSQLRowsetAccess   = "dair:SQLRowsetAccess"
)

// SQLExecuteFactory implements SQLFactory.SQLExecuteFactory (paper
// §4.3, Figs. 3 and 5): it executes the expression against the source
// resource, wraps the outcome as a new service-managed SQLResponse data
// resource, registers it with the target data service and returns it.
// The caller (service layer) converts the resource into an EPR.
//
// The configuration document controls the derived resource's
// configurable properties; a nil config applies WS-DAI defaults.
func SQLExecuteFactory(ctx context.Context, src *SQLDataResource, target *core.DataService, expression string,
	params []sqlengine.Value, cfg *core.Configuration) (*SQLResponseResource, error) {
	if err := core.CheckReadable(src); err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	if h, err := src.startStream(expression, params, c); err != nil {
		return nil, err
	} else if h != nil {
		// Streaming delivery: the resource is registered while the
		// engine is still producing, so GetTuples on derived rowset
		// resources can start answering immediately (paper Fig. 5's
		// third-party delivery without waiting for the full result).
		res := newStreamingResponseResource(src.AbstractName(), h, c)
		target.AddResource(res)
		return res, nil
	}
	data, err := src.SQLExecute(ctx, expression, params)
	if err != nil {
		return nil, err
	}
	res := NewSQLResponseResource(src.AbstractName(), data, c)
	if c.Sensitivity == core.Sensitive {
		// A Sensitive derived resource reflects later parent changes
		// (paper §4.2) by re-evaluating the expression on each access.
		expr, ps := expression, append([]sqlengine.Value(nil), params...)
		// Refreshes run on later accesses, after the creating request's
		// context is gone, so they execute under their own background
		// context.
		res.setRefresh(func() (*SQLResponseData, error) {
			return src.SQLExecute(context.Background(), expr, ps)
		})
	}
	target.AddResource(res)
	return res, nil
}

// SQLRowsetFactory implements ResponseFactory.SQLRowsetFactory (paper
// Fig. 5): from an existing SQLResponse resource it creates a new
// service-managed rowset resource holding the response's rowset in the
// requested dataset format, registers it with the target service and
// returns it. Count limits the number of rows copied into the derived
// resource (0 = all), mirroring the Count element of the
// SQLRowsetFactoryRequest message.
func SQLRowsetFactory(ctx context.Context, src *SQLResponseResource, target *core.DataService, formatURI string,
	count int, cfg *core.Configuration) (*SQLRowsetResource, error) {
	if err := core.TimeoutFault(ctx); err != nil {
		return nil, err
	}
	if err := core.CheckReadable(src); err != nil {
		return nil, err
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	src.mu.RLock()
	h := src.stream
	src.mu.RUnlock()
	if h != nil && count <= 0 {
		// Streaming source, unbounded copy: share the producing buffer
		// instead of materialising — GetTuples pages are carved from it
		// on demand and the full result never has to fit in RAM.
		res, err := NewStreamingSQLRowsetResource(src.AbstractName(), h.buf, formatURI, c)
		if err != nil {
			return nil, err
		}
		h.buf.Retain()
		target.AddResource(res)
		return res, nil
	}
	var copied *sqlengine.ResultSet
	if h != nil {
		// Bounded copy from a streaming source: wait only for the first
		// count rows, not the whole result.
		set, err := h.buf.Window(ctx, 1, count)
		if err != nil {
			return nil, execFault(err)
		}
		copied = &sqlengine.ResultSet{Columns: set.Columns, Rows: set.Rows}
	} else {
		set, err := src.GetSQLRowset(0)
		if err != nil {
			return nil, err
		}
		copied = &sqlengine.ResultSet{Columns: set.Columns}
		if count <= 0 || count > len(set.Rows) {
			count = len(set.Rows)
		}
		copied.Rows = append(copied.Rows, set.Rows[:count]...)
	}
	res, err := NewSQLRowsetResource(src.AbstractName(), copied, formatURI, c)
	if err != nil {
		return nil, err
	}
	target.AddResource(res)
	return res, nil
}

// RowsetFromSQL is a convenience composing both factories when no
// intermediate response resource is needed: it executes a query and
// directly materialises a rowset resource (the short-cut the paper
// notes at the end of §4.2: "all that would be required is for Data
// Service 1 to support the SQLResponseFactory interface").
func RowsetFromSQL(ctx context.Context, src *SQLDataResource, target *core.DataService, expression string,
	params []sqlengine.Value, formatURI string, cfg *core.Configuration) (*SQLRowsetResource, error) {
	if err := core.CheckReadable(src); err != nil {
		return nil, err
	}
	data, err := src.SQLExecute(ctx, expression, params)
	if err != nil {
		return nil, err
	}
	set := data.FirstRowset()
	if set == nil {
		return nil, &core.InvalidExpressionFault{Detail: "expression did not produce a rowset"}
	}
	c := core.DefaultConfiguration()
	if cfg != nil {
		c = *cfg
	}
	res, err := NewSQLRowsetResource(src.AbstractName(), set, formatURI, c)
	if err != nil {
		return nil, err
	}
	target.AddResource(res)
	return res, nil
}

// StandardConfigurationMaps returns the ConfigurationMap entries a
// relational data service advertises: one per factory message type.
func StandardConfigurationMaps() []core.ConfigurationMapEntry {
	return []core.ConfigurationMapEntry{
		{
			MessageName: "SQLExecuteFactoryRequest",
			PortType:    PortTypeSQLResponseAccess,
			Default:     core.DefaultConfiguration(),
		},
		{
			MessageName: "SQLRowsetFactoryRequest",
			PortType:    PortTypeSQLRowsetAccess,
			Default:     core.DefaultConfiguration(),
		},
	}
}

// DefaultRowsetFormats lists the format URIs every relational service
// supports out of the box.
func DefaultRowsetFormats() []string {
	return []string{rowset.FormatCSV, rowset.FormatSQLRowset, rowset.FormatWebRowSet}
}
