// Package dair implements the WS-DAIR relational realisation: the SQL
// data resource backed by the sqlengine substrate, the SQLAccess,
// SQLFactory, ResponseAccess, ResponseFactory and RowsetAccess
// interfaces of the specification's Fig. 6, the SQL communication area
// carried in every response, and the CIM-rendered relational metadata
// exposed through the SQLPropertyDocument.
package dair

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dais/internal/cim"
	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// NSDAIR is the WS-DAIR namespace.
const NSDAIR = "http://www.ggf.org/namespaces/2005/12/WS-DAIR"

// LanguageSQL92 identifies SQL as a GenericQueryLanguage.
const LanguageSQL92 = "http://www.sqlstandards.org/SQL92"

// Wrapper is the §2.1 language-transparency strategy: "DAIS compliant
// services may implement thin or thick wrappers". A thin wrapper passes
// the expression straight to the underlying DBMS; a thick wrapper may
// "intercept, parse, translate or redirect" it first.
type Wrapper interface {
	// Prepare inspects (and possibly rewrites) a SQL expression before
	// it reaches the engine.
	Prepare(expression string) (string, error)
}

// ThinWrapper forwards expressions untouched.
type ThinWrapper struct{}

// Prepare implements Wrapper as the identity.
func (ThinWrapper) Prepare(expression string) (string, error) { return expression, nil }

// ThickWrapper parses and validates the expression with the engine's
// own parser before forwarding it, converting syntax errors into
// InvalidExpressionFaults at the service boundary instead of engine
// errors mid-execution.
type ThickWrapper struct{}

// Prepare implements Wrapper with a full parse/validate pass.
func (ThickWrapper) Prepare(expression string) (string, error) {
	if _, _, err := sqlengine.Parse(expression); err != nil {
		return "", &core.InvalidExpressionFault{Detail: err.Error()}
	}
	return expression, nil
}

// SQLDataResource is an externally managed relational data resource: a
// WS-DAIR wrapper around a database in the sqlengine substrate.
type SQLDataResource struct {
	core.BaseResource
	engine  *sqlengine.Engine
	formats *rowset.Registry
	wrapper Wrapper

	// streamCfg enables streaming result delivery for derived
	// resources (WithStreamDelivery); nil keeps the materialised path.
	streamCfg *rowset.BufferConfig

	// txnMu guards the consumer-controlled transaction session.
	txnMu   sync.Mutex
	txnSess *sqlengine.Session
}

// ResourceOption configures a SQLDataResource.
type ResourceOption func(*SQLDataResource)

// WithWrapper selects the language-transparency strategy (default
// thin).
func WithWrapper(w Wrapper) ResourceOption {
	return func(r *SQLDataResource) { r.wrapper = w }
}

// WithConfiguration overrides the default configuration.
func WithConfiguration(c core.Configuration) ResourceOption {
	return func(r *SQLDataResource) { r.Config = c }
}

// NewSQLDataResource wraps an engine as an externally managed resource
// with a fresh abstract name.
func NewSQLDataResource(engine *sqlengine.Engine, opts ...ResourceOption) *SQLDataResource {
	r := &SQLDataResource{
		BaseResource: core.BaseResource{
			Name: core.NewAbstractName("sql"),
			Mgmt: core.ExternallyManaged,
			Config: core.Configuration{
				Description:           "relational data resource " + engine.Database().Name(),
				Readable:              true,
				Writeable:             true,
				TransactionInitiation: core.TransactionPerMessage,
				TransactionIsolation:  sqlengine.ReadCommitted.String(),
			},
		},
		engine:  engine,
		formats: rowset.NewRegistry(),
		wrapper: ThinWrapper{},
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Engine exposes the underlying engine (examples and benches).
func (r *SQLDataResource) Engine() *sqlengine.Engine { return r.engine }

// Formats exposes the dataset format registry.
func (r *SQLDataResource) Formats() *rowset.Registry { return r.formats }

// QueryLanguages implements core.DataResource.
func (r *SQLDataResource) QueryLanguages() []string { return []string{LanguageSQL92} }

// DatasetFormats implements core.DataResource.
func (r *SQLDataResource) DatasetFormats() []string { return r.formats.URIs() }

// GenericQuery implements the WS-DAI GenericQuery operation over SQL:
// the result is rendered as an SQLRowset element (queries) or an
// UpdateCount element (DML).
func (r *SQLDataResource) GenericQuery(ctx context.Context, languageURI, expression string) (*xmlutil.Element, error) {
	resp, err := r.SQLExecute(ctx, expression, nil)
	if err != nil {
		return nil, err
	}
	if rs := resp.FirstRowset(); rs != nil {
		return rowset.SQLRowsetElement(rs), nil
	}
	e := xmlutil.NewElement(NSDAIR, "UpdateCount")
	e.SetText(fmt.Sprintf("%d", resp.UpdateCount()))
	return e, nil
}

// ExtendedProperties implements core.DataResource with the WS-DAIR
// static extensions: the CIMDescription relational metadata rendering
// and engine-level facts.
func (r *SQLDataResource) ExtendedProperties() []*xmlutil.Element {
	cimDesc := xmlutil.NewElement(NSDAIR, "CIMDescription")
	cimDesc.AppendChild(cim.Describe(r.engine.Database()))
	tables := xmlutil.NewElement(NSDAIR, "NumberOfTables")
	tables.SetText(fmt.Sprintf("%d", len(r.engine.Database().TableNames())))
	stats := r.engine.PlanCacheStats()
	plans := xmlutil.NewElement(NSDAIR, "PlanCache")
	plans.SetAttr("", "hits", fmt.Sprintf("%d", stats.Hits))
	plans.SetAttr("", "misses", fmt.Sprintf("%d", stats.Misses))
	plans.SetAttr("", "size", fmt.Sprintf("%d", stats.Size))
	return []*xmlutil.Element{cimDesc, tables, plans}
}

// SQLExecute implements the SQLAccess SQLExecute operation: it runs one
// SQL expression (with optional positional parameters) under the
// resource's transaction policy and captures the outcome — rowset or
// update count plus the SQL communication area — as an in-memory
// response.
func (r *SQLDataResource) SQLExecute(ctx context.Context, expression string, params []sqlengine.Value) (*SQLResponseData, error) {
	prepared, err := r.wrapper.Prepare(expression)
	if err != nil {
		return nil, err
	}
	if err := r.authorize(prepared); err != nil {
		return nil, err
	}
	var res *sqlengine.Result
	switch r.Config.TransactionInitiation {
	case core.TransactionConsumerControlled:
		// One sticky session carries the consumer's BEGIN/COMMIT
		// statements across messages.
		r.txnMu.Lock()
		if r.txnSess == nil {
			r.txnSess = r.engine.NewSession()
			if iso, perr := sqlengine.ParseIsolationLevel(r.Config.TransactionIsolation); perr == nil {
				r.txnSess.SetIsolation(iso)
			}
		}
		res, err = r.txnSess.ExecuteContext(ctx, prepared, params...)
		r.txnMu.Unlock()
	case core.TransactionPerMessage:
		sess := r.engine.NewSession()
		if iso, perr := sqlengine.ParseIsolationLevel(r.Config.TransactionIsolation); perr == nil {
			sess.SetIsolation(iso)
		}
		// Auto-commit in the engine is already statement-atomic, which
		// is exactly the per-message atomic transaction semantics.
		res, err = sess.ExecuteContext(ctx, prepared, params...)
	default: // TransactionNotSupported
		res, err = r.engine.NewSession().ExecuteContext(ctx, prepared, params...)
	}
	if res == nil && err != nil {
		return nil, execFault(err)
	}
	data := newResponseData(res)
	if err != nil {
		// Execution failed: the communication area carries the
		// diagnostic; surface both, letting service layers choose to
		// fault or to ship the CA.
		return data, execFault(err)
	}
	return data, nil
}

// execFault maps engine errors to DAIS faults: a cancelled or timed-out
// execution becomes a RequestTimeoutFault, everything else an
// InvalidExpressionFault. Bare context errors (a GetTuples wait on a
// streaming tail outliving its request deadline) time out too.
func execFault(err error) error {
	var ce *sqlengine.CancelledError
	if errors.As(err, &ce) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &core.RequestTimeoutFault{Detail: err.Error()}
	}
	return &core.InvalidExpressionFault{Detail: err.Error()}
}

// authorize enforces the Readable/Writeable configurable properties:
// queries require Readable, data- and schema-changing statements
// require Writeable. The statement is classified through Engine.Prepare,
// which also warms the prepared-plan cache so the execution that follows
// reuses the parse and the compiled plan; unclassifiable text falls
// through to the engine, which will reject it anyway.
func (r *SQLDataResource) authorize(expression string) error {
	prep, err := r.engine.Prepare(expression)
	if err != nil {
		return nil
	}
	switch prep.Statement().(type) {
	case *sqlengine.SelectStmt, *sqlengine.ExplainStmt:
		return core.CheckReadable(r)
	case *sqlengine.BeginStmt, *sqlengine.CommitStmt, *sqlengine.RollbackStmt:
		return nil
	default: // DML and DDL
		return core.CheckWriteable(r)
	}
}

// Release implements core.DataResource; external data stays in place.
func (r *SQLDataResource) Release() error { return nil }
