package dair

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dais/internal/core"
	"dais/internal/rowset"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

func seedEngine(t testing.TB) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.New("hr")
	e.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, salary DOUBLE)`)
	e.MustExec(`INSERT INTO emp VALUES (1, 'ann', 120000), (2, 'bob', 95000), (3, 'carol', 87000)`)
	return e
}

func TestSQLExecuteQuery(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t))
	resp, err := r.SQLExecute(context.Background(), `SELECT name FROM emp WHERE salary > ? ORDER BY name`,
		[]sqlengine.Value{sqlengine.NewDouble(90000)})
	if err != nil {
		t.Fatal(err)
	}
	rs := resp.FirstRowset()
	if rs == nil || len(rs.Rows) != 2 {
		t.Fatalf("rowset = %+v", rs)
	}
	if resp.CA.SQLState != sqlengine.StateSuccess || resp.CA.RowsFetched != 2 {
		t.Fatalf("CA = %+v", resp.CA)
	}
	if resp.UpdateCount() != -1 {
		t.Fatalf("update count = %d", resp.UpdateCount())
	}
}

func TestSQLExecuteUpdate(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t))
	resp, err := r.SQLExecute(context.Background(), `UPDATE emp SET salary = salary + 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.UpdateCount() != 3 {
		t.Fatalf("update count = %d", resp.UpdateCount())
	}
	if resp.FirstRowset() != nil {
		t.Fatal("update should not produce a rowset")
	}
}

func TestSQLExecuteErrorCarriesCA(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t))
	resp, err := r.SQLExecute(context.Background(), `SELECT * FROM missing`, nil)
	var ief *core.InvalidExpressionFault
	if !errors.As(err, &ief) {
		t.Fatalf("err = %v", err)
	}
	if resp == nil || resp.CA.SQLState == sqlengine.StateSuccess {
		t.Fatalf("CA should carry the failure: %+v", resp)
	}
}

func TestThickWrapperRejectsEarly(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t), WithWrapper(ThickWrapper{}))
	_, err := r.SQLExecute(context.Background(), `SELEKT * FROM emp`, nil)
	var ief *core.InvalidExpressionFault
	if !errors.As(err, &ief) {
		t.Fatalf("err = %v", err)
	}
	// Valid statements pass through unchanged.
	resp, err := r.SQLExecute(context.Background(), `SELECT COUNT(*) FROM emp`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.FirstRowset().Rows[0][0].I != 3 {
		t.Fatal("wrong result through thick wrapper")
	}
}

func TestGenericQueryRendersRowset(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t))
	el, err := r.GenericQuery(context.Background(), LanguageSQL92, `SELECT id FROM emp ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if el.Name.Local != "SQLRowset" {
		t.Fatalf("element = %v", el.Name)
	}
	set, err := rowset.DecodeSQLRowsetElement(el)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 3 {
		t.Fatalf("rows = %d", len(set.Rows))
	}
	upd, err := r.GenericQuery(context.Background(), LanguageSQL92, `DELETE FROM emp WHERE id = 3`)
	if err != nil {
		t.Fatal(err)
	}
	if upd.Name.Local != "UpdateCount" || upd.Text() != "1" {
		t.Fatalf("update element = %s", xmlutil.MarshalString(upd))
	}
}

func TestResourceProperties(t *testing.T) {
	r := NewSQLDataResource(seedEngine(t))
	if r.Management() != core.ExternallyManaged {
		t.Fatal("base resource should be externally managed")
	}
	if len(r.QueryLanguages()) != 1 || r.QueryLanguages()[0] != LanguageSQL92 {
		t.Fatalf("languages = %v", r.QueryLanguages())
	}
	if len(r.DatasetFormats()) != 3 {
		t.Fatalf("formats = %v", r.DatasetFormats())
	}
	ext := r.ExtendedProperties()
	var sawCIM, sawTables bool
	for _, e := range ext {
		switch e.Name.Local {
		case "CIMDescription":
			sawCIM = true
			if len(e.ChildElements()) == 0 {
				t.Fatal("CIMDescription empty")
			}
		case "NumberOfTables":
			sawTables = true
			if e.Text() != "1" {
				t.Fatalf("tables = %s", e.Text())
			}
		}
	}
	if !sawCIM || !sawTables {
		t.Fatalf("extensions = %v", ext)
	}
}

func TestSQLExecuteFactoryAndResponseAccess(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	svc2 := core.NewDataService("ds2")
	resp, err := SQLExecuteFactory(context.Background(), src, svc2, `SELECT name, salary FROM emp ORDER BY salary DESC`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Management() != core.ServiceManaged {
		t.Fatal("derived resource must be service managed")
	}
	if resp.ParentName() != src.AbstractName() {
		t.Fatal("parent name not recorded")
	}
	if _, err := svc2.Resolve(resp.AbstractName()); err != nil {
		t.Fatal("resource not registered with target service")
	}
	rs, err := resp.GetSQLRowset(0)
	if err != nil || len(rs.Rows) != 3 {
		t.Fatalf("rowset = %v, %v", rs, err)
	}
	if rs.Rows[0][0].String() != "ann" {
		t.Fatalf("order lost: %v", rs.Rows)
	}
	if _, err := resp.GetSQLRowset(1); err == nil {
		t.Fatal("second rowset should not exist")
	}
	if _, err := resp.GetSQLUpdateCount(0); err == nil {
		t.Fatal("query response has no update count")
	}
	if _, err := resp.GetSQLReturnValue(); err == nil {
		t.Fatal("no return value expected")
	}
	if _, err := resp.GetSQLOutputParameter("x"); err == nil {
		t.Fatal("no output parameter expected")
	}
	item, err := resp.GetSQLResponseItem(0)
	if err != nil || item.Kind != ItemRowset {
		t.Fatalf("item = %+v, %v", item, err)
	}
	if _, err := resp.GetSQLResponseItem(1); err == nil {
		t.Fatal("item 1 should not exist")
	}
	ca := resp.GetSQLCommunicationArea()
	if ca.SQLState != sqlengine.StateSuccess {
		t.Fatalf("CA = %+v", ca)
	}
}

func TestFactoryUpdateResponse(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	svc := core.NewDataService("ds")
	resp, err := SQLExecuteFactory(context.Background(), src, svc, `UPDATE emp SET salary = 1`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := resp.GetSQLUpdateCount(0)
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	ext := resp.ExtendedProperties()
	var counts []string
	for _, e := range ext {
		counts = append(counts, e.Name.Local+"="+e.Text())
	}
	joined := strings.Join(counts, ",")
	if !strings.Contains(joined, "NumberOfSQLUpdateCounts=1") || !strings.Contains(joined, "NumberOfSQLRowsets=0") {
		t.Fatalf("counts = %s", joined)
	}
}

func TestSQLRowsetFactoryChain(t *testing.T) {
	// The full Fig. 5 pipeline at the model level.
	src := NewSQLDataResource(seedEngine(t))
	ds2 := core.NewDataService("ds2")
	ds3 := core.NewDataService("ds3")

	resp, err := SQLExecuteFactory(context.Background(), src, ds2, `SELECT id, name FROM emp ORDER BY id`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SQLRowsetFactory(context.Background(), resp, ds3, rowset.FormatWebRowSet, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ParentName() != resp.AbstractName() {
		t.Fatal("rowset parent should be the response resource")
	}
	if rr.FormatURI() != rowset.FormatWebRowSet {
		t.Fatalf("format = %s", rr.FormatURI())
	}
	if rr.RowCount() != 3 {
		t.Fatalf("rows = %d", rr.RowCount())
	}
	page, err := rr.GetTuples(context.Background(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	set, err := (rowset.WebRowSetCodec{}).Decode(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 1 || set.Rows[0][1].String() != "bob" {
		t.Fatalf("page = %+v", set.Rows)
	}
}

func TestSQLRowsetFactoryCountLimit(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")
	resp, _ := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM emp ORDER BY id`, nil, nil)
	rr, err := SQLRowsetFactory(context.Background(), resp, ds, "", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.RowCount() != 2 {
		t.Fatalf("rows = %d", rr.RowCount())
	}
}

func TestSQLRowsetFactoryBadFormat(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")
	resp, _ := SQLExecuteFactory(context.Background(), src, ds, `SELECT id FROM emp`, nil, nil)
	_, err := SQLRowsetFactory(context.Background(), resp, ds, "urn:fmt:unknown", 0, nil)
	var idf *core.InvalidDatasetFormatFault
	if !errors.As(err, &idf) {
		t.Fatalf("err = %v", err)
	}
}

func TestRowsetFromSQLShortcut(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")
	rr, err := RowsetFromSQL(context.Background(), src, ds, `SELECT name FROM emp`, nil, rowset.FormatCSV, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ParentName() != src.AbstractName() {
		t.Fatal("shortcut parent should be the source resource")
	}
	data, err := rr.GetTuples(context.Background(), 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ann") {
		t.Fatalf("csv = %s", data)
	}
	// Non-query expression fails.
	if _, err := RowsetFromSQL(context.Background(), src, ds, `DELETE FROM emp WHERE id = 99`, nil, "", nil); err == nil {
		t.Fatal("expected fault for non-query")
	}
}

func TestReadableWriteableEnforcement(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t),
		WithConfiguration(core.Configuration{Readable: false, TransactionIsolation: "READ COMMITTED"}))
	ds := core.NewDataService("ds")
	var naf *core.NotAuthorizedFault
	if _, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT 1`, nil, nil); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}

	// A derived unreadable response refuses access ops.
	src2 := NewSQLDataResource(seedEngine(t))
	cfg := core.DefaultConfiguration()
	cfg.Readable = false
	resp, err := SQLExecuteFactory(context.Background(), src2, ds, `SELECT 1`, nil, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resp.GetSQLRowset(0); !errors.As(err, &naf) {
		t.Fatalf("err = %v", err)
	}
}

func TestConsumerControlledTransactions(t *testing.T) {
	cfg := core.Configuration{
		Readable: true, Writeable: true,
		TransactionInitiation: core.TransactionConsumerControlled,
		TransactionIsolation:  "READ COMMITTED",
	}
	r := NewSQLDataResource(seedEngine(t), WithConfiguration(cfg))
	if _, err := r.SQLExecute(context.Background(), `BEGIN`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SQLExecute(context.Background(), `UPDATE emp SET salary = 0`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SQLExecute(context.Background(), `ROLLBACK`, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := r.SQLExecute(context.Background(), `SELECT salary FROM emp WHERE id = 1`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.FirstRowset().Rows[0][0].String() != "120000" {
		t.Fatal("rollback across messages failed")
	}
}

func TestResponseReleaseDropsData(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")
	resp, _ := SQLExecuteFactory(context.Background(), src, ds, `SELECT * FROM emp`, nil, nil)
	if err := ds.DestroyDataResource(context.Background(), resp.AbstractName()); err != nil {
		t.Fatal(err)
	}
	if _, err := resp.GetSQLRowset(0); err == nil {
		t.Fatal("released response should have no rowset")
	}
}

func TestCommunicationAreaRoundTrip(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	resp, _ := src.SQLExecute(context.Background(), `SELECT * FROM emp`, nil)
	el := resp.CommunicationAreaElement()
	re, err := xmlutil.ParseString(xmlutil.MarshalString(el))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := ParseCommunicationArea(re)
	if err != nil {
		t.Fatal(err)
	}
	if ca.SQLState != resp.CA.SQLState || ca.RowsFetched != resp.CA.RowsFetched {
		t.Fatalf("ca = %+v, want %+v", ca, resp.CA)
	}
	if _, err := ParseCommunicationArea(nil); err == nil {
		t.Fatal("nil element")
	}
}

func TestRowsetPropertyExtensions(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")
	rr, _ := RowsetFromSQL(context.Background(), src, ds, `SELECT id, name FROM emp`, nil, "", nil)
	ext := rr.ExtendedProperties()
	var found int
	for _, e := range ext {
		switch e.Name.Local {
		case "NumberOfRows":
			if e.Text() != "3" {
				t.Fatalf("rows = %s", e.Text())
			}
			found++
		case "RowsetFormat":
			if e.Text() != rowset.FormatSQLRowset {
				t.Fatalf("format = %s", e.Text())
			}
			found++
		case "RowsetSchema":
			if len(e.ChildElements()) == 0 {
				t.Fatal("schema empty")
			}
			found++
		}
	}
	if found != 3 {
		t.Fatalf("extensions = %v", ext)
	}
}

func TestStandardConfigurationMaps(t *testing.T) {
	maps := StandardConfigurationMaps()
	if len(maps) != 2 {
		t.Fatalf("maps = %d", len(maps))
	}
	el := maps[0].Element()
	if el.FindText(core.NSDAI, "MessageName") != "SQLExecuteFactoryRequest" {
		t.Fatalf("map = %s", xmlutil.MarshalString(el))
	}
	if el.Find(core.NSDAI, "ConfigurationDocument") == nil {
		t.Fatal("default configuration missing")
	}
}

func TestSensitivitySemantics(t *testing.T) {
	src := NewSQLDataResource(seedEngine(t))
	ds := core.NewDataService("ds")

	insensitive := core.DefaultConfiguration() // Insensitive by default
	snap, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT COUNT(*) FROM emp`, nil, &insensitive)
	if err != nil {
		t.Fatal(err)
	}
	sensitiveCfg := core.DefaultConfiguration()
	sensitiveCfg.Sensitivity = core.Sensitive
	live, err := SQLExecuteFactory(context.Background(), src, ds, `SELECT COUNT(*) FROM emp`, nil, &sensitiveCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the parent after both derivations.
	if _, err := src.SQLExecute(context.Background(), `DELETE FROM emp WHERE id = 1`, nil); err != nil {
		t.Fatal(err)
	}

	snapSet, err := snap.GetSQLRowset(0)
	if err != nil {
		t.Fatal(err)
	}
	if snapSet.Rows[0][0].I != 3 {
		t.Fatalf("insensitive resource should keep the snapshot: %v", snapSet.Rows[0][0])
	}
	liveSet, err := live.GetSQLRowset(0)
	if err != nil {
		t.Fatal(err)
	}
	if liveSet.Rows[0][0].I != 2 {
		t.Fatalf("sensitive resource should reflect the parent: %v", liveSet.Rows[0][0])
	}
	// Release detaches the sensitive resource from its parent.
	if err := ds.DestroyDataResource(context.Background(), live.AbstractName()); err != nil {
		t.Fatal(err)
	}
	if _, err := live.GetSQLRowset(0); err == nil {
		t.Fatal("released sensitive resource should have no data")
	}
}
