package resil

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dais/internal/core"
)

func TestGateGlobalCap(t *testing.T) {
	g := NewGate(AdmissionConfig{MaxInFlight: 2, RetryAfter: 3 * time.Second})
	r1, _, err := g.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := g.Acquire("urn:r")
	if err != nil {
		t.Fatal(err)
	}
	_, scope, err := g.Acquire("")
	var busy *core.ServiceBusyFault
	if !errors.As(err, &busy) || scope != ScopeService {
		t.Fatalf("err=%v scope=%q", err, scope)
	}
	if busy.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v", busy.RetryAfter)
	}
	r1()
	r3, _, err := g.Acquire("")
	if err != nil {
		t.Fatalf("release did not free a slot: %v", err)
	}
	r2()
	r3()
	if g.InFlight() != 0 {
		t.Fatalf("in-flight = %d after all releases", g.InFlight())
	}
}

func TestGatePerResourceCap(t *testing.T) {
	g := NewGate(AdmissionConfig{MaxInFlight: 100, PerResource: 1})
	r1, _, err := g.Acquire("urn:a")
	if err != nil {
		t.Fatal(err)
	}
	// A second request for the same resource sheds; another resource and
	// a resource-less request are admitted.
	_, scope, err := g.Acquire("urn:a")
	var busy *core.ServiceBusyFault
	if !errors.As(err, &busy) || scope != ScopeResource {
		t.Fatalf("err=%v scope=%q", err, scope)
	}
	rb, _, err := g.Acquire("urn:b")
	if err != nil {
		t.Fatal(err)
	}
	rn, _, err := g.Acquire("")
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2, _, err := g.Acquire("urn:a")
	if err != nil {
		t.Fatalf("release did not free the resource slot: %v", err)
	}
	r2()
	rb()
	rn()
	if g.InFlight() != 0 {
		t.Fatalf("in-flight = %d", g.InFlight())
	}
}

func TestGateDisabledGlobalCap(t *testing.T) {
	g := NewGate(AdmissionConfig{MaxInFlight: -1, PerResource: 1})
	for i := 0; i < 50; i++ {
		release, _, err := g.Acquire("")
		if err != nil {
			t.Fatalf("negative cap must accept everything: %v", err)
		}
		defer release()
	}
}

func TestGateConcurrentAccounting(t *testing.T) {
	g := NewGate(AdmissionConfig{MaxInFlight: 8, PerResource: 4})
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				release, _, err := g.Acquire("urn:shared")
				if err != nil {
					continue
				}
				if n := g.InFlight(); n < 1 || n > 8 {
					t.Errorf("in-flight = %d outside [1, 8]", n)
				}
				release()
			}
		}()
	}
	wg.Wait()
	if g.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", g.InFlight())
	}
}
