package resil

import (
	"sync"
	"sync/atomic"
	"time"

	"dais/internal/core"
)

// AdmissionConfig bounds the concurrency a service endpoint accepts
// before shedding load.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently processed requests across the whole
	// endpoint (0 selects DefaultMaxInFlight; negative disables the
	// global cap).
	MaxInFlight int
	// PerResource caps concurrently processed requests addressed to one
	// data resource abstract name (0 disables the per-resource cap).
	PerResource int
	// RetryAfter is the pacing hint attached to shed responses (0
	// selects DefaultRetryAfter).
	RetryAfter time.Duration
}

// Defaults for AdmissionConfig zero values.
const (
	DefaultMaxInFlight = 1024
	DefaultRetryAfter  = time.Second
)

// Shed scopes reported by Gate.Acquire and used as metric labels.
const (
	ScopeService  = "service"
	ScopeResource = "resource"
)

// Gate is a bounded-concurrency admission controller: requests beyond
// the in-flight caps are rejected immediately with a ServiceBusyFault
// instead of queuing. Rejection over queuing keeps the endpoint's
// latency bounded under overload and gives consumers an explicit
// Retry-After pacing hint their retry policies understand.
type Gate struct {
	cfg AdmissionConfig

	inFlight atomic.Int64

	mu         sync.Mutex
	byResource map[string]int
}

// NewGate builds an admission gate, applying defaults for zero config
// values.
func NewGate(cfg AdmissionConfig) *Gate {
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	return &Gate{cfg: cfg, byResource: make(map[string]int)}
}

// InFlight reports the requests currently admitted.
func (g *Gate) InFlight() int64 { return g.inFlight.Load() }

// Acquire admits a request addressed to the given data resource (""
// for service-level operations that target no resource). On admission
// it returns a release function the caller must invoke exactly once
// when processing ends. On rejection it returns a *core.ServiceBusyFault
// and the scope of the exhausted cap (ScopeService or ScopeResource).
func (g *Gate) Acquire(resource string) (release func(), scope string, err error) {
	if g.cfg.MaxInFlight > 0 {
		if n := g.inFlight.Add(1); n > int64(g.cfg.MaxInFlight) {
			g.inFlight.Add(-1)
			return nil, ScopeService, &core.ServiceBusyFault{
				Reason:     "service at capacity",
				RetryAfter: g.cfg.RetryAfter,
			}
		}
	} else {
		g.inFlight.Add(1)
	}
	if g.cfg.PerResource > 0 && resource != "" {
		g.mu.Lock()
		if g.byResource[resource] >= g.cfg.PerResource {
			g.mu.Unlock()
			g.inFlight.Add(-1)
			return nil, ScopeResource, &core.ServiceBusyFault{
				Reason:     "data resource " + resource + " at capacity",
				RetryAfter: g.cfg.RetryAfter,
			}
		}
		g.byResource[resource]++
		g.mu.Unlock()
		return func() {
			g.mu.Lock()
			if g.byResource[resource] <= 1 {
				delete(g.byResource, resource)
			} else {
				g.byResource[resource]--
			}
			g.mu.Unlock()
			g.inFlight.Add(-1)
		}, "", nil
	}
	return func() { g.inFlight.Add(-1) }, "", nil
}
