package resil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/soap"
	"dais/internal/telemetry"
	"dais/internal/xmlutil"
)

func TestBackoffCeiling(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 50 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 50 * time.Millisecond,
		2: 100 * time.Millisecond,
		3: 200 * time.Millisecond,
		4: 400 * time.Millisecond,
	} {
		if got := backoffCeiling(p, attempt); got != want {
			t.Errorf("attempt %d: ceiling = %v, want %v", attempt, got, want)
		}
	}
	p.MaxDelay = 150 * time.Millisecond
	if got := backoffCeiling(p, 4); got != 150*time.Millisecond {
		t.Errorf("capped ceiling = %v", got)
	}
	// Zero base falls back to a sane default rather than spinning.
	if got := backoffCeiling(Policy{}, 1); got <= 0 {
		t.Errorf("zero-base ceiling = %v", got)
	}
}

func TestFullJitterBounds(t *testing.T) {
	for i := 0; i < 100; i++ {
		d := fullJitter(time.Second)
		if d < 0 || d >= time.Second {
			t.Fatalf("jitter %v out of [0, 1s)", d)
		}
	}
	if fullJitter(0) != 0 {
		t.Fatal("zero ceiling must yield zero delay")
	}
}

func TestBudgetAllows(t *testing.T) {
	if !budgetAllows(context.Background(), time.Hour) {
		t.Fatal("no deadline should always allow")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if budgetAllows(ctx, time.Second) {
		t.Fatal("sleep longer than the remaining budget must be refused")
	}
	if !budgetAllows(ctx, time.Millisecond) {
		t.Fatal("sleep inside the budget must be allowed")
	}
}

func TestTransientClassification(t *testing.T) {
	busyDetail := xmlutil.NewElement(core.NSDAI, "ServiceBusyFault")
	otherDetail := xmlutil.NewElement(core.NSDAI, "InvalidResourceNameFault")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", fmt.Errorf("soap: transport: %w", context.DeadlineExceeded), false},
		{"busy typed", &core.ServiceBusyFault{}, true},
		{"busy soap fault", &soap.Fault{Code: "Server", Detail: busyDetail}, true},
		{"typed soap fault", &soap.Fault{Code: "Client", Detail: otherDetail}, false},
		{"plain soap fault", &soap.Fault{Code: "Server", String: "boom"}, false},
		{"http 503", &soap.HTTPError{StatusCode: 503}, true},
		{"http 404", &soap.HTTPError{StatusCode: 404}, false},
		{"transport", errors.New("connection refused"), true},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("%s: Transient = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryHint(t *testing.T) {
	if d := RetryHint(&core.ServiceBusyFault{RetryAfter: 3 * time.Second}); d != 3*time.Second {
		t.Fatalf("busy hint = %v", d)
	}
	if d := RetryHint(&soap.Fault{RetryAfter: 2 * time.Second}); d != 2*time.Second {
		t.Fatalf("fault hint = %v", d)
	}
	if d := RetryHint(&soap.HTTPError{StatusCode: 503, RetryAfter: time.Second}); d != time.Second {
		t.Fatalf("http hint = %v", d)
	}
	if d := RetryHint(errors.New("x")); d != 0 {
		t.Fatalf("plain hint = %v", d)
	}
}

// testConfig returns a deterministic config: identity jitter, recorded
// sleeps instead of real ones.
func testConfig(slept *[]time.Duration) ClientConfig {
	cfg := DefaultClientConfig()
	cfg.Retry = Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond}
	cfg.Breaker = BreakerConfig{} // breaker off unless the test wants it
	cfg.Jitter = func(d time.Duration) time.Duration { return d }
	cfg.Sleep = func(ctx context.Context, d time.Duration) error {
		if slept != nil {
			*slept = append(*slept, d)
		}
		return nil
	}
	return cfg
}

func idemCtx() context.Context {
	return ops.WithCallInfo(context.Background(),
		ops.CallInfo{Action: "urn:test:Get", Op: "Get", Idempotent: true})
}

func mutCtx() context.Context {
	return ops.WithCallInfo(context.Background(),
		ops.CallInfo{Action: "urn:test:Put", Op: "Put"})
}

func env() *soap.Envelope {
	return soap.NewEnvelope(xmlutil.NewElement("urn:t", "X"))
}

func TestRetryReplaysIdempotentOnly(t *testing.T) {
	for _, c := range []struct {
		name string
		ctx  context.Context
		want int
	}{
		{"idempotent", idemCtx(), 4},
		{"mutation", mutCtx(), 1},
		{"uncatalogued", context.Background(), 1},
	} {
		attempts := 0
		ic := NewClientResilience(testConfig(nil))
		_, err := ic(c.ctx, "urn:test:op", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
			attempts++
			return nil, errors.New("connection refused")
		})
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if attempts != c.want {
			t.Errorf("%s: attempts = %d, want %d", c.name, attempts, c.want)
		}
	}
}

func TestRetryRecoversAndBacksOff(t *testing.T) {
	var slept []time.Duration
	attempts := 0
	ic := NewClientResilience(testConfig(&slept))
	resp, err := ic(idemCtx(), "urn:test:Get", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		attempts++
		if attempts < 3 {
			return nil, errors.New("connection reset")
		}
		return env(), nil
	})
	if err != nil || resp == nil {
		t.Fatalf("recovered call failed: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff = %v, want %v", slept, want)
	}
}

func TestRetryStopsOnTypedFault(t *testing.T) {
	attempts := 0
	ic := NewClientResilience(testConfig(nil))
	_, err := ic(idemCtx(), "urn:test:Get", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		attempts++
		return nil, &soap.Fault{Code: "Client", String: "no such resource",
			Detail: xmlutil.NewElement(core.NSDAI, "InvalidResourceNameFault")}
	})
	if err == nil || attempts != 1 {
		t.Fatalf("typed fault must not retry: attempts=%d err=%v", attempts, err)
	}
}

func TestRetryHonorsServerPacingHint(t *testing.T) {
	var slept []time.Duration
	attempts := 0
	ic := NewClientResilience(testConfig(&slept))
	ic(idemCtx(), "urn:test:Get", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) { //nolint:errcheck
		attempts++
		return nil, &core.ServiceBusyFault{RetryAfter: 500 * time.Millisecond}
	})
	if attempts != 4 {
		t.Fatalf("attempts = %d", attempts)
	}
	for _, d := range slept {
		if d < 500*time.Millisecond {
			t.Fatalf("slept %v, below the server's 500ms hint", d)
		}
	}
}

func TestRetryRespectsDeadlineBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(idemCtx(), 5*time.Millisecond)
	defer cancel()
	var slept []time.Duration
	cfg := testConfig(&slept)
	cfg.Retry.BaseDelay = time.Second // far beyond the 5ms budget
	attempts := 0
	ic := NewClientResilience(cfg)
	_, err := ic(ctx, "urn:test:Get", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		attempts++
		return nil, errors.New("connection refused")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if attempts != 1 || len(slept) != 0 {
		t.Fatalf("budget ignored: attempts=%d slept=%v", attempts, slept)
	}
}

func TestInterceptorOpensBreaker(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Retry = Policy{MaxAttempts: 1}
	cfg.Breaker = BreakerConfig{Threshold: 3, Cooldown: time.Minute, HalfOpenProbes: 1}
	ic := NewClientResilience(cfg)
	ctx := soap.WithEndpoint(context.Background(), "http://a")
	attempts := 0
	fail := func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) {
		attempts++
		return nil, errors.New("connection refused")
	}
	for i := 0; i < 3; i++ {
		ic(ctx, "urn:test:op", env(), fail) //nolint:errcheck
	}
	_, err := ic(ctx, "urn:test:op", env(), fail)
	var open *CircuitOpenError
	if !errors.As(err, &open) || open.Endpoint != "http://a" {
		t.Fatalf("err = %v", err)
	}
	if attempts != 3 {
		t.Fatalf("open breaker still reached the transport: attempts=%d", attempts)
	}
	// Another endpoint is unaffected.
	other := soap.WithEndpoint(context.Background(), "http://b")
	if _, err := ic(other, "urn:test:op", env(), fail); errors.As(err, &open) {
		t.Fatal("breaker leaked across endpoints")
	}
}

func TestRetryCounterRecorded(t *testing.T) {
	obs := telemetry.NewObserver()
	cfg := testConfig(nil)
	cfg.Observer = obs
	ic := NewClientResilience(cfg)
	ic(idemCtx(), "urn:test:Get", env(), func(context.Context, string, *soap.Envelope) (*soap.Envelope, error) { //nolint:errcheck
		return nil, errors.New("connection refused")
	})
	found := false
	for _, s := range obs.Registry.Snapshot() {
		if s.Name == MetricRetries && s.Label("op") == "Get" && s.Label("reason") == "transport" {
			found = true
			if s.Value != 3 { // 4 attempts = 3 retries
				t.Fatalf("retries = %v", s.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no %s sample: %+v", MetricRetries, obs.Registry.Snapshot())
	}
}
