package resil

import "dais/internal/telemetry"

// Metric names exposed by the resilience layer.
const (
	// MetricRetries counts retry attempts (not first attempts), labelled
	// by operation and transient-failure class.
	MetricRetries = "dais_retries_total"
	// MetricBreakerTransitions counts circuit state changes, labelled by
	// endpoint and destination state.
	MetricBreakerTransitions = "dais_breaker_transitions_total"
	// MetricBreakerState gauges the current circuit state per endpoint
	// (0 closed, 1 half-open, 2 open).
	MetricBreakerState = "dais_breaker_state"
	// MetricShed counts requests rejected by the admission gate,
	// labelled by service name and shed scope ("service" or "resource").
	MetricShed = "dais_shed_total"
)

// metrics binds the resilience instruments on a telemetry registry. A
// nil *metrics is valid and records nothing, so call sites need no
// observer checks.
type metrics struct {
	retries     *telemetry.CounterVec
	transitions *telemetry.CounterVec
	state       *telemetry.GaugeVec
	shed        *telemetry.CounterVec
}

// metricsFor binds (or rebinds — registration is idempotent per name)
// the resilience metric families on reg.
func metricsFor(reg *telemetry.Registry) *metrics {
	return &metrics{
		retries: reg.NewCounterVec(MetricRetries,
			"Retry attempts by operation and transient-failure class.", "op", "reason"),
		transitions: reg.NewCounterVec(MetricBreakerTransitions,
			"Circuit breaker state transitions by endpoint and destination state.", "endpoint", "to"),
		state: reg.NewGaugeVec(MetricBreakerState,
			"Current circuit breaker state by endpoint (0 closed, 1 half-open, 2 open).", "endpoint"),
		shed: reg.NewCounterVec(MetricShed,
			"Requests shed by the admission gate by service and scope.", "service", "scope"),
	}
}

func (m *metrics) countRetry(op, reason string) {
	if m == nil {
		return
	}
	m.retries.With(op, reason).Inc()
}

func (m *metrics) breakerTransition(endpoint, to string) {
	if m == nil {
		return
	}
	m.transitions.With(endpoint, to).Inc()
	var level int64
	switch to {
	case StateHalfOpen:
		level = 1
	case StateOpen:
		level = 2
	}
	m.state.With(endpoint).Set(level)
}

func (m *metrics) countShed(service, scope string) {
	if m == nil {
		return
	}
	m.shed.With(service, scope).Inc()
}

// ShedObserver binds the shed counter on reg and returns the recording
// callback the service layer invokes per rejected request.
func ShedObserver(reg *telemetry.Registry) func(service, scope string) {
	return metricsFor(reg).countShed
}
