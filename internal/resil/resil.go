// Package resil is the resilience layer of the DAIS stack: retry
// policies with exponential backoff and full jitter, per-endpoint
// circuit breakers, and bounded-concurrency admission gates.
//
// The paper's indirect access pattern (Fig. 1, Fig. 5) assumes
// long-lived multi-consumer pipelines in which a consumer holds an EPR
// to a service-managed resource across many exchanges, so transient
// transport failures, slow backends and overload have to be survived
// rather than surfaced as one-shot faults. The layer splits in two:
//
//   - Consumer side, NewClientResilience returns a soap.Interceptor
//     that retries idempotent operations (classification comes from the
//     ops catalog's Idempotent flag — reads retry, factories and
//     destroys never do), spreads attempts with full-jitter exponential
//     backoff bounded by the caller's context deadline, and trips a
//     per-endpoint closed/open/half-open circuit breaker on consecutive
//     transient failures.
//
//   - Service side, Gate is the admission control service.NewEndpoint
//     installs: requests beyond the configured in-flight caps (global
//     and per-resource) are shed immediately with a typed
//     ServiceBusyFault carried on HTTP 503 with a Retry-After hint,
//     instead of queuing unboundedly.
//
// Everything is observable through internal/telemetry: retries, breaker
// state transitions and shed requests surface as counters on the
// observer's registry.
package resil

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/soap"
	"dais/internal/telemetry"
)

// Policy bounds the retry behaviour of one operation class.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay is the backoff ceiling before the first retry; each
	// further retry doubles it (then full jitter picks a uniform delay
	// below the ceiling).
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling (0 = uncapped).
	MaxDelay time.Duration
}

// retries reports whether the policy allows more than one attempt.
func (p Policy) retries() bool { return p.MaxAttempts > 1 }

// ClientConfig configures the consumer-side resilience interceptor.
type ClientConfig struct {
	// Retry is the policy applied to operations the ops catalog marks
	// idempotent. Non-idempotent and uncatalogued operations are never
	// retried regardless of this policy.
	Retry Policy
	// PolicyFor overrides the per-operation policy resolution: it
	// receives the call metadata (zero CallInfo and known=false when the
	// action is not in the catalog) and returns the policy to apply.
	PolicyFor func(info ops.CallInfo, known bool) Policy
	// Breaker configures the per-endpoint circuit breaker; a zero
	// Threshold disables breaking.
	Breaker BreakerConfig
	// Observer receives retry and breaker metrics on its registry (nil
	// records nothing).
	Observer *telemetry.Observer
	// OnBreakerChange observes per-endpoint circuit state transitions in
	// addition to the Observer's metrics (nil observes nothing). The
	// federation gateway hooks this to mark a backend unhealthy the
	// moment its breaker opens instead of waiting for the next probe.
	OnBreakerChange func(endpoint, to string)

	// Jitter maps a backoff ceiling to the actual delay; nil selects
	// full jitter (uniform in [0, ceiling)). Tests inject identity for
	// determinism.
	Jitter func(ceiling time.Duration) time.Duration
	// Sleep waits between attempts; nil selects a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the breaker's clock; nil selects time.Now.
	Now func() time.Time
}

// DefaultClientConfig is the policy the consumer client installs when
// none is supplied: up to 4 attempts for idempotent reads with a 50 ms
// base backoff capped at 2 s, and a breaker tripping after 5
// consecutive transient failures with a 1 s cool-down.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Retry:   Policy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second},
		Breaker: BreakerConfig{Threshold: 5, Cooldown: time.Second, HalfOpenProbes: 1},
	}
}

// fullJitter draws a uniform delay below the ceiling — the "full
// jitter" strategy, which decorrelates a thundering herd of retrying
// consumers better than equal or proportional jitter.
func fullJitter(ceiling time.Duration) time.Duration {
	if ceiling <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(ceiling))) //nolint:gosec // jitter needs no crypto entropy
}

// backoffCeiling computes the exponential ceiling before the retry that
// follows attempt (1-based): BaseDelay doubled per completed attempt,
// capped at MaxDelay.
func backoffCeiling(p Policy, attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// budgetAllows reports whether sleeping d still leaves time before the
// caller's deadline. Retrying never exceeds the caller's context: when
// the remaining budget cannot cover the delay, the last error is
// surfaced immediately instead of burning the budget asleep.
func budgetAllows(ctx context.Context, d time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	return time.Until(dl) > d
}

// sleepCtx waits for d or until the context ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Transient reports whether an exchange error is a transient
// transport/overload failure — the class that retry policies replay and
// circuit breakers count. Typed application faults are definitive
// answers from the service and are not transient; context cancellation
// and deadline expiry belong to the caller, not the path.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var busy *core.ServiceBusyFault
	if errors.As(err, &busy) {
		return true
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		// A decoded SOAP fault is a definitive server answer — except
		// the overload shed, which asks the consumer to come back.
		return f.Detail != nil && f.Detail.Name.Local == "ServiceBusyFault"
	}
	var he *soap.HTTPError
	if errors.As(err, &he) {
		switch he.StatusCode {
		case 429, 502, 503, 504:
			return true
		}
		return false
	}
	// Dial/read failures, connection resets, corrupt (unparseable)
	// responses: the exchange outcome is unknown.
	return true
}

// RetryHint extracts the server's Retry-After pacing hint from an
// exchange error (0 when none was sent).
func RetryHint(err error) time.Duration {
	var busy *core.ServiceBusyFault
	if errors.As(err, &busy) {
		return busy.RetryAfter
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		return f.RetryAfter
	}
	var he *soap.HTTPError
	if errors.As(err, &he) {
		return he.RetryAfter
	}
	return 0
}

// CircuitOpenError is returned without touching the network while an
// endpoint's breaker is open: the endpoint has produced enough
// consecutive transient failures that hammering it further would only
// deepen the overload.
type CircuitOpenError struct {
	Endpoint string
}

func (e *CircuitOpenError) Error() string {
	return "resil: circuit open for endpoint " + e.Endpoint
}

// NewClientResilience builds the consumer-side resilience interceptor:
// retry with backoff for idempotent operations plus a per-endpoint
// circuit breaker. Install it inside the telemetry interceptor so each
// logical call stays one span/metric observation regardless of how many
// attempts it took.
func NewClientResilience(cfg ClientConfig) soap.Interceptor {
	if cfg.Jitter == nil {
		cfg.Jitter = fullJitter
	}
	if cfg.Sleep == nil {
		cfg.Sleep = sleepCtx
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	var m *metrics
	if cfg.Observer != nil {
		m = metricsFor(cfg.Observer.Registry)
	}
	onChange := m.breakerTransition
	if cfg.OnBreakerChange != nil {
		user := cfg.OnBreakerChange
		onChange = func(endpoint, to string) {
			m.breakerTransition(endpoint, to)
			user(endpoint, to)
		}
	}
	group := newBreakerGroup(cfg.Breaker, cfg.Now, onChange)
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		policy := cfg.policyFor(ctx, action)
		br := group.get(soap.EndpointFromContext(ctx))
		var resp *soap.Envelope
		var err error
		for attempt := 1; ; attempt++ {
			if br != nil && !br.Allow() {
				if attempt > 1 {
					return resp, err // the breaker opened mid-retry; surface the real failure
				}
				return nil, &CircuitOpenError{Endpoint: br.endpoint}
			}
			resp, err = next(ctx, action, env)
			transient := Transient(err)
			if br != nil {
				br.Record(!transient)
			}
			if err == nil || !transient || attempt >= policy.MaxAttempts || ctx.Err() != nil {
				return resp, err
			}
			d := cfg.Jitter(backoffCeiling(policy, attempt))
			if hint := RetryHint(err); hint > d {
				d = hint
			}
			if !budgetAllows(ctx, d) {
				return resp, err
			}
			m.countRetry(opLabel(ctx, action), retryReason(err))
			if cfg.Sleep(ctx, d) != nil {
				return resp, err
			}
		}
	}
}

// policyFor resolves the retry policy for one call from its catalog
// metadata: idempotent operations get the configured retry policy,
// everything else (non-idempotent and uncatalogued actions alike) a
// single attempt.
func (cfg ClientConfig) policyFor(ctx context.Context, action string) Policy {
	info, known := ops.CallInfoFromContext(ctx)
	if !known {
		if spec, ok := ops.ByAction(action); ok {
			info, known = spec.Info(), true
		}
	}
	if cfg.PolicyFor != nil {
		return cfg.PolicyFor(info, known)
	}
	if known && info.Idempotent && cfg.Retry.retries() {
		return cfg.Retry
	}
	return Policy{MaxAttempts: 1}
}

// opLabel resolves the bounded operation label for the retry counter.
func opLabel(ctx context.Context, action string) string {
	if info, ok := ops.CallInfoFromContext(ctx); ok {
		return info.Op
	}
	return ops.OpOf(action)
}

// retryReason classifies a transient error into the bounded reason
// label of the retry counter.
func retryReason(err error) string {
	var busy *core.ServiceBusyFault
	var f *soap.Fault
	var he *soap.HTTPError
	switch {
	case errors.As(err, &busy), errors.As(err, &f):
		return "busy"
	case errors.As(err, &he):
		return "http"
	default:
		return "transport"
	}
}
