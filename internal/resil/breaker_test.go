package resil

import (
	"testing"
	"time"
)

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func record(b *Breaker, ok bool, n int) *Breaker {
	for i := 0; i < n; i++ {
		b.Record(ok)
	}
	return b
}

func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	var transitions []string
	b := NewBreaker("http://a", BreakerConfig{Threshold: 3, Cooldown: time.Second, HalfOpenProbes: 1},
		clk.now, func(_, to string) { transitions = append(transitions, to) })

	// Closed: failures below the threshold keep the circuit closed, and
	// a success resets the consecutive count.
	record(b, false, 2)
	b.Record(true)
	record(b, false, 2)
	if b.State() != StateClosed {
		t.Fatalf("state = %s", b.State())
	}

	// The third consecutive failure opens the circuit.
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("state = %s after threshold", b.State())
	}
	if b.Allow() {
		t.Fatal("open circuit admitted a call")
	}

	// Cooldown elapses: half-open admits exactly HalfOpenProbes probes.
	clk.advance(time.Second)
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %s after cooldown", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}

	// Probe fails: back to open, cooldown restarts.
	b.Record(false)
	if b.State() != StateOpen {
		t.Fatalf("state = %s after failed probe", b.State())
	}
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened circuit admitted a call before the new cooldown elapsed")
	}

	// Second probe succeeds: closed again.
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open refused the second probe")
	}
	b.Record(true)
	if b.State() != StateClosed {
		t.Fatalf("state = %s after successful probe", b.State())
	}

	want := []string{StateOpen, StateHalfOpen, StateOpen, StateHalfOpen, StateClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerGroupKeysByEndpoint(t *testing.T) {
	g := newBreakerGroup(BreakerConfig{Threshold: 1, Cooldown: time.Minute}, time.Now, nil)
	a, b := g.get("http://a"), g.get("http://b")
	if a == b || a == nil || b == nil {
		t.Fatal("endpoints must get distinct breakers")
	}
	if g.get("http://a") != a {
		t.Fatal("breaker not reused per endpoint")
	}
	a.Record(false)
	if a.State() != StateOpen || b.State() != StateClosed {
		t.Fatal("breaker state leaked across endpoints")
	}
	if g.get("") != nil {
		t.Fatal("unknown endpoint must not get a breaker")
	}
	off := newBreakerGroup(BreakerConfig{}, time.Now, nil)
	if off.get("http://a") != nil {
		t.Fatal("zero threshold must disable breaking")
	}
}
