package resil

import (
	"sync"
	"time"
)

// BreakerConfig bounds a per-endpoint circuit breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive transient failures that
	// opens the circuit; 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open circuit rejects calls before letting
	// a half-open probe through.
	Cooldown time.Duration
	// HalfOpenProbes is how many in-flight probes the half-open state
	// admits at once (minimum 1).
	HalfOpenProbes int
}

// Breaker states, in order of degradation.
const (
	StateClosed   = "closed"
	StateOpen     = "open"
	StateHalfOpen = "half-open"
)

// Breaker is a closed/open/half-open circuit breaker for one endpoint.
//
//	closed --(Threshold consecutive failures)--> open
//	open --(Cooldown elapsed)--> half-open
//	half-open --(probe succeeds)--> closed
//	half-open --(probe fails)--> open (cooldown restarts)
type Breaker struct {
	endpoint string
	cfg      BreakerConfig
	now      func() time.Time
	onChange func(endpoint, to string)

	mu       sync.Mutex
	state    string
	failures int       // consecutive transient failures while closed
	openedAt time.Time // when the circuit last opened
	probes   int       // in-flight half-open probes
}

// NewBreaker builds a breaker for one endpoint. onChange (may be nil)
// observes state transitions.
func NewBreaker(endpoint string, cfg BreakerConfig, now func() time.Time, onChange func(endpoint, to string)) *Breaker {
	if now == nil {
		now = time.Now
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	return &Breaker{endpoint: endpoint, cfg: cfg, now: now, onChange: onChange, state: StateClosed}
}

// State reports the current state (advancing open→half-open if the
// cool-down has elapsed).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	return b.state
}

// Allow reports whether a call may proceed now. In half-open state it
// admits up to HalfOpenProbes concurrent probes; callers that get true
// must follow up with Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Record reports a call outcome: ok means the exchange did not end in a
// transient failure (success and definitive application faults both
// count as ok — they prove the endpoint is reachable and serving).
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tick()
	switch b.state {
	case StateClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.transition(StateOpen)
		}
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if ok {
			b.transition(StateClosed)
		} else {
			b.transition(StateOpen)
		}
	case StateOpen:
		// A straggler from before the circuit opened; nothing to learn.
	}
}

// tick advances open→half-open when the cool-down has elapsed. Callers
// hold b.mu.
func (b *Breaker) tick() {
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transition(StateHalfOpen)
	}
}

// transition moves to a new state and notifies the observer. Callers
// hold b.mu.
func (b *Breaker) transition(to string) {
	if b.state == to {
		return
	}
	b.state = to
	switch to {
	case StateOpen:
		b.openedAt = b.now()
		b.probes = 0
	case StateClosed:
		b.failures = 0
		b.probes = 0
	case StateHalfOpen:
		b.probes = 0
	}
	if b.onChange != nil {
		b.onChange(b.endpoint, to)
	}
}

// breakerGroup lazily creates one breaker per endpoint URL.
type breakerGroup struct {
	cfg      BreakerConfig
	now      func() time.Time
	onChange func(endpoint, to string)

	mu sync.Mutex
	by map[string]*Breaker
}

func newBreakerGroup(cfg BreakerConfig, now func() time.Time, onChange func(endpoint, to string)) *breakerGroup {
	return &breakerGroup{cfg: cfg, now: now, onChange: onChange, by: make(map[string]*Breaker)}
}

// get returns the endpoint's breaker, or nil when breaking is disabled
// or the endpoint is unknown (no soap.WithEndpoint on the context).
func (g *breakerGroup) get(endpoint string) *Breaker {
	if g.cfg.Threshold <= 0 || endpoint == "" {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if b, ok := g.by[endpoint]; ok {
		return b
	}
	b := NewBreaker(endpoint, g.cfg, g.now, g.onChange)
	g.by[endpoint] = b
	return b
}
