package rowset

import (
	"bytes"
	"fmt"
	"testing"

	"dais/internal/sqlengine"
)

func windowSet(rows int) *sqlengine.ResultSet {
	// The last column is declared untyped (a computed expression) so
	// range encoding exercises effectiveColumnsRange inference.
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger, Table: "t"},
			{Name: "name", Type: sqlengine.TypeVarchar, Table: "t"},
			{Name: "score", Type: sqlengine.TypeNull},
		},
	}
	for i := 0; i < rows; i++ {
		name := sqlengine.NewString(fmt.Sprintf("row-%d", i))
		score := sqlengine.NewDouble(float64(i) / 4)
		if i%3 == 0 {
			score = sqlengine.Null
		}
		set.Rows = append(set.Rows, []sqlengine.Value{sqlengine.NewInt(int64(i)), name, score})
	}
	return set
}

func TestSliceBoundsEdges(t *testing.T) {
	rs := windowSet(5)
	cases := []struct {
		name         string
		start, count int
		wantIDs      []int64
	}{
		{"negative start", -3, 2, []int64{0, 1}},
		{"zero start", 0, 2, []int64{0, 1}},
		{"count past end", 4, 100, []int64{3, 4}},
		{"start past end", 9, 2, nil},
		{"zero count", 2, 0, nil},
		{"negative count", 2, -1, nil},
		{"full range", 1, 5, []int64{0, 1, 2, 3, 4}},
		{"interior page", 2, 2, []int64{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := Slice(rs, tc.start, tc.count)
			if len(out.Rows) != len(tc.wantIDs) {
				t.Fatalf("got %d rows, want %d", len(out.Rows), len(tc.wantIDs))
			}
			for i, id := range tc.wantIDs {
				if out.Rows[i][0].I != id {
					t.Fatalf("row %d: id %d, want %d", i, out.Rows[i][0].I, id)
				}
			}
		})
	}
}

func TestSliceIsZeroCopyView(t *testing.T) {
	rs := windowSet(5)
	view := Slice(rs, 2, 2)
	if &view.Rows[0][0] != &rs.Rows[1][0] {
		t.Fatal("Slice copied the window instead of aliasing it")
	}
	// The view's capacity is clamped, so growing it must not clobber
	// the source's next row.
	view.Rows = append(view.Rows, rs.Rows[0])
	if rs.Rows[3][0].I != 3 {
		t.Fatalf("append through the view clobbered the source: %v", rs.Rows[3][0])
	}
}

func TestEncodeRangeMatchesMaterialisedPage(t *testing.T) {
	rs := windowSet(12)
	reg := NewRegistry()
	windows := [][2]int{{1, 4}, {5, 3}, {11, 10}, {1, 12}, {20, 2}, {3, 0}}
	for _, uri := range reg.URIs() {
		codec, err := reg.Lookup(uri)
		if err != nil {
			t.Fatal(err)
		}
		re, ok := codec.(RangeEncoder)
		if !ok {
			t.Fatalf("%s does not implement RangeEncoder", uri)
		}
		for _, w := range windows {
			start, count := w[0], w[1]
			// Reference: a materialised deep-copy page, as the old
			// Slice produced, run through the whole-set encoder.
			page := &sqlengine.ResultSet{Columns: rs.Columns}
			from, to := Window(rs, start, count)
			for _, r := range rs.Rows[from:to] {
				page.Rows = append(page.Rows, append([]sqlengine.Value(nil), r...))
			}
			want, err := codec.Encode(page)
			if err != nil {
				t.Fatal(err)
			}
			got, err := re.EncodeRange(rs, from, to)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s window (%d,%d): range encode differs from materialised page:\n%s\n---\n%s",
					uri, start, count, got, want)
			}
			viaHelper, err := EncodeWindow(codec, rs, start, count)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(viaHelper, want) {
				t.Fatalf("%s window (%d,%d): EncodeWindow differs from materialised page", uri, start, count)
			}
		}
	}
}
