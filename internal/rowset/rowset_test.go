package rowset

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

func sampleSet() *sqlengine.ResultSet {
	return &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger, Table: "emp"},
			{Name: "name", Type: sqlengine.TypeVarchar, Table: "emp"},
			{Name: "salary", Type: sqlengine.TypeDouble},
			{Name: "active", Type: sqlengine.TypeBoolean},
			{Name: "hired", Type: sqlengine.TypeTimestamp},
		},
		Rows: [][]sqlengine.Value{
			{sqlengine.NewInt(1), sqlengine.NewString("ann"), sqlengine.NewDouble(1.5),
				sqlengine.NewBool(true), sqlengine.NewTimestamp(time.Date(2005, 9, 1, 0, 0, 0, 0, time.UTC))},
			{sqlengine.NewInt(2), sqlengine.Null, sqlengine.Null,
				sqlengine.NewBool(false), sqlengine.Null},
		},
	}
}

func assertSetsEqual(t *testing.T, a, b *sqlengine.ResultSet) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("columns %d != %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i].Name != b.Columns[i].Name || a.Columns[i].Type != b.Columns[i].Type {
			t.Fatalf("column %d: %+v != %+v", i, a.Columns[i], b.Columns[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("rows %d != %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.IsNull() != bv.IsNull() {
				t.Fatalf("row %d col %d: null mismatch %v vs %v", i, j, av, bv)
			}
			if !av.IsNull() && av.String() != bv.String() {
				t.Fatalf("row %d col %d: %q != %q", i, j, av.String(), bv.String())
			}
		}
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	reg := NewRegistry()
	for _, uri := range reg.URIs() {
		codec, err := reg.Lookup(uri)
		if err != nil {
			t.Fatal(err)
		}
		in := sampleSet()
		data, err := codec.Encode(in)
		if err != nil {
			t.Fatalf("%s encode: %v", uri, err)
		}
		out, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("%s decode: %v\n%s", uri, err, data)
		}
		assertSetsEqual(t, in, out)
	}
}

func TestRegistryDefaults(t *testing.T) {
	reg := NewRegistry()
	uris := reg.URIs()
	if len(uris) != 3 {
		t.Fatalf("uris = %v", uris)
	}
	c, err := reg.Lookup("")
	if err != nil || c.FormatURI() != FormatSQLRowset {
		t.Fatalf("default lookup = %v, %v", c, err)
	}
	if _, err := reg.Lookup("urn:unknown"); err == nil {
		t.Fatal("unknown format should fail")
	}
}

func TestSQLRowsetStructure(t *testing.T) {
	data, err := SQLRowsetCodec{}.Encode(sampleSet())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"SQLRowset", "Metadata", `name="id"`, `type="INTEGER"`, `isNull="true"`} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestWebRowSetStructure(t *testing.T) {
	data, err := WebRowSetCodec{}.Encode(sampleSet())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"webRowSet", "column-count", "currentRow", "columnValue", "column-definition"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in output:\n%s", want, s)
		}
	}
}

func TestCSVSpecialValues(t *testing.T) {
	in := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{{Name: "v", Type: sqlengine.TypeVarchar}},
		Rows: [][]sqlengine.Value{
			{sqlengine.NewString(`\N`)}, // literal backslash-N, not NULL
			{sqlengine.Null},
			{sqlengine.NewString("with,comma")},
			{sqlengine.NewString("with\nnewline")},
			{sqlengine.NewString(`quote"inside`)},
			{sqlengine.NewString("")},
		},
	}
	data, err := CSVCodec{}.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := CSVCodec{}.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows[0][0].IsNull() || out.Rows[0][0].String() != `\N` {
		t.Fatalf("literal sentinel mangled: %v", out.Rows[0][0])
	}
	if !out.Rows[1][0].IsNull() {
		t.Fatal("NULL lost")
	}
	for i := 2; i <= 5; i++ {
		if out.Rows[i][0].String() != in.Rows[i][0].String() {
			t.Fatalf("row %d: %q != %q", i, out.Rows[i][0].String(), in.Rows[i][0].String())
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := (SQLRowsetCodec{}).Decode([]byte(`<NotRowset/>`)); err == nil {
		t.Fatal("wrong root")
	}
	if _, err := (SQLRowsetCodec{}).Decode([]byte(`garbage`)); err == nil {
		t.Fatal("garbage")
	}
	if _, err := (WebRowSetCodec{}).Decode([]byte(`<wrong/>`)); err == nil {
		t.Fatal("wrong webrowset root")
	}
	if _, err := (CSVCodec{}).Decode(nil); err == nil {
		t.Fatal("empty csv")
	}
	// Row arity mismatch.
	bad := `<SQLRowset xmlns="` + NSDAIR + `"><Metadata><Column name="a" type="INTEGER"/></Metadata><Row><Value>1</Value><Value>2</Value></Row></SQLRowset>`
	if _, err := (SQLRowsetCodec{}).Decode([]byte(bad)); err == nil {
		t.Fatal("arity mismatch")
	}
}

func TestSlicePaging(t *testing.T) {
	rs := &sqlengine.ResultSet{Columns: []sqlengine.ResultColumn{{Name: "n", Type: sqlengine.TypeInteger}}}
	for i := 1; i <= 10; i++ {
		rs.Rows = append(rs.Rows, []sqlengine.Value{sqlengine.NewInt(int64(i))})
	}
	page := Slice(rs, 3, 4)
	if len(page.Rows) != 4 || page.Rows[0][0].I != 3 || page.Rows[3][0].I != 6 {
		t.Fatalf("page = %+v", page.Rows)
	}
	if p := Slice(rs, 9, 5); len(p.Rows) != 2 {
		t.Fatalf("tail page = %d", len(p.Rows))
	}
	if p := Slice(rs, 11, 5); len(p.Rows) != 0 {
		t.Fatalf("beyond end = %d", len(p.Rows))
	}
	if p := Slice(rs, 0, 2); len(p.Rows) != 2 || p.Rows[0][0].I != 1 {
		t.Fatalf("clamped start = %+v", p.Rows)
	}
	if p := Slice(rs, 1, 0); len(p.Rows) != 0 {
		t.Fatal("zero count should be empty")
	}
}

// Property: paging with any page size visits every row exactly once.
func TestQuickSliceCoverage(t *testing.T) {
	f := func(n uint8, page uint8) bool {
		total := int(n%50) + 1
		size := int(page%9) + 1
		rs := &sqlengine.ResultSet{Columns: []sqlengine.ResultColumn{{Name: "n", Type: sqlengine.TypeInteger}}}
		for i := 0; i < total; i++ {
			rs.Rows = append(rs.Rows, []sqlengine.Value{sqlengine.NewInt(int64(i))})
		}
		var got []int64
		for pos := 1; ; pos += size {
			p := Slice(rs, pos, size)
			if len(p.Rows) == 0 {
				break
			}
			for _, r := range p.Rows {
				got = append(got, r[0].I)
			}
		}
		if len(got) != total {
			return false
		}
		for i, v := range got {
			if v != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SQLRowset round trip preserves arbitrary strings.
func TestQuickSQLRowsetStrings(t *testing.T) {
	f := func(vals []string) bool {
		in := &sqlengine.ResultSet{Columns: []sqlengine.ResultColumn{{Name: "s", Type: sqlengine.TypeVarchar}}}
		for _, v := range vals {
			clean := strings.Map(func(r rune) rune {
				if r == '\t' || r == '\n' || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF)) {
					return r
				}
				return -1
			}, v)
			clean = strings.ReplaceAll(clean, "\r", "")
			in.Rows = append(in.Rows, []sqlengine.Value{sqlengine.NewString(clean)})
		}
		data, err := (SQLRowsetCodec{}).Encode(in)
		if err != nil {
			return false
		}
		out, err := (SQLRowsetCodec{}).Decode(data)
		if err != nil || len(out.Rows) != len(in.Rows) {
			return false
		}
		for i := range in.Rows {
			if out.Rows[i][0].String() != in.Rows[i][0].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEmptyResultSetRoundTrip(t *testing.T) {
	in := &sqlengine.ResultSet{Columns: []sqlengine.ResultColumn{{Name: "a", Type: sqlengine.TypeInteger}}}
	for _, codec := range []Codec{SQLRowsetCodec{}, WebRowSetCodec{}, CSVCodec{}} {
		data, err := codec.Encode(in)
		if err != nil {
			t.Fatalf("%s: %v", codec.FormatURI(), err)
		}
		out, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", codec.FormatURI(), err)
		}
		if len(out.Rows) != 0 || len(out.Columns) != 1 {
			t.Fatalf("%s: out = %+v", codec.FormatURI(), out)
		}
	}
}

// TestSQLRowsetEncodeMatchesTree pins the direct byte encoder to the
// element-tree rendering: every page shape — full set, windows, empty
// window, tricky values — must marshal to identical bytes either way.
func TestSQLRowsetEncodeMatchesTree(t *testing.T) {
	tricky := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "s", Type: sqlengine.TypeVarchar, Table: "t<&>"},
			{Name: `q"uote`, Type: sqlengine.TypeVarchar},
			{Name: "n", Type: sqlengine.TypeNull}, // inferred per window
		},
		Rows: [][]sqlengine.Value{
			{sqlengine.NewString("a & b <c> \"d\""), sqlengine.NewString(""), sqlengine.Null},
			{sqlengine.NewString("plain"), sqlengine.Null, sqlengine.NewInt(7)},
		},
	}
	for _, rs := range []*sqlengine.ResultSet{sampleSet(), tricky} {
		for from := 0; from <= len(rs.Rows); from++ {
			for to := from; to <= len(rs.Rows); to++ {
				got, err := SQLRowsetCodec{}.EncodeRange(rs, from, to)
				if err != nil {
					t.Fatal(err)
				}
				want := xmlutil.Marshal(sqlRowsetRangeElement(rs, from, to))
				if string(got) != string(want) {
					t.Fatalf("EncodeRange(%d,%d) diverged from tree rendering:\n got %s\nwant %s",
						from, to, got, want)
				}
			}
		}
	}
}
