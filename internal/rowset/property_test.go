package rowset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"dais/internal/sqlengine"
)

// Property-based round-trip coverage for the three standard codecs.
// Each trial generates a result set from a seeded source — concrete
// column types, NULLs, empty strings, non-ASCII text, backslashes,
// CSV-hostile and XML-hostile characters, large cells — and asserts
// decode(encode(rs)) preserves every value and that a second encode is
// byte-identical to the first (the canonical-form property GetTuples
// paging relies on).
//
// Carriage returns are deliberately absent from the generator: XML 1.0
// line-end normalisation and encoding/csv both rewrite \r\n to \n on
// read, so \r is not representable in any of the three wire formats.

var cellTypes = []sqlengine.Type{
	sqlengine.TypeInteger,
	sqlengine.TypeBigint,
	sqlengine.TypeDouble,
	sqlengine.TypeVarchar,
	sqlengine.TypeBoolean,
	sqlengine.TypeTimestamp,
}

// stringPool holds the adversarial VARCHAR payloads: sentinel
// collisions, escape fodder, quoting edge cases and multi-byte text.
var stringPool = []string{
	"",
	"NULL",
	`\N`,
	`\E`,
	`\`,
	`\\`,
	`\x`,
	"plain",
	"héllo wörld",
	"日本語のテキスト",
	"смешанный текст",
	"😀🎉",
	"comma,separated",
	`quo"ted`,
	"line\nbreak",
	"tab\tseparated",
	"<a attr=\"v\">&amp;</a>",
	"]]>",
	strings.Repeat("x", 8192),
	strings.Repeat("数", 2048),
}

func randomValue(rng *rand.Rand, t sqlengine.Type) sqlengine.Value {
	if rng.Float64() < 0.15 {
		return sqlengine.Null
	}
	switch t {
	case sqlengine.TypeInteger:
		return sqlengine.NewInt(rng.Int63() - rng.Int63())
	case sqlengine.TypeBigint:
		switch rng.Intn(4) {
		case 0:
			return sqlengine.NewBigint(math.MaxInt64)
		case 1:
			return sqlengine.NewBigint(math.MinInt64)
		default:
			return sqlengine.NewBigint(rng.Int63() - rng.Int63())
		}
	case sqlengine.TypeDouble:
		switch rng.Intn(6) {
		case 0:
			return sqlengine.NewDouble(0)
		case 1:
			return sqlengine.NewDouble(math.Copysign(0, -1))
		case 2:
			return sqlengine.NewDouble(math.MaxFloat64)
		case 3:
			return sqlengine.NewDouble(math.SmallestNonzeroFloat64)
		default:
			return sqlengine.NewDouble(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20)))
		}
	case sqlengine.TypeVarchar:
		return sqlengine.NewString(stringPool[rng.Intn(len(stringPool))])
	case sqlengine.TypeBoolean:
		return sqlengine.NewBool(rng.Intn(2) == 0)
	case sqlengine.TypeTimestamp:
		sec := rng.Int63n(4102444800) // within [1970, 2100)
		return sqlengine.NewTimestamp(time.Unix(sec, rng.Int63n(1e9)))
	}
	return sqlengine.Null
}

func randomResultSet(rng *rand.Rand) *sqlengine.ResultSet {
	ncols := 1 + rng.Intn(6)
	rs := &sqlengine.ResultSet{}
	for i := 0; i < ncols; i++ {
		col := sqlengine.ResultColumn{
			Name: "c" + string(rune('a'+i)),
			Type: cellTypes[rng.Intn(len(cellTypes))],
		}
		if rng.Intn(3) == 0 {
			col.Table = "t"
		}
		rs.Columns = append(rs.Columns, col)
	}
	nrows := rng.Intn(24)
	for r := 0; r < nrows; r++ {
		row := make([]sqlengine.Value, ncols)
		for i, c := range rs.Columns {
			row[i] = randomValue(rng, c.Type)
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs
}

// equalValue compares by type, nullness and rendering: time.Time and
// negative-zero internals make struct equality stricter than the wire
// contract, which only promises the rendered value survives.
func equalValue(a, b sqlengine.Value) bool {
	return a.Type == b.Type && a.IsNull() == b.IsNull() && a.String() == b.String()
}

// assertEqualSets checks column metadata and every cell. CSV carries no
// table attribution, so callers set ignoreTable for it.
func assertEqualSets(t *testing.T, want, got *sqlengine.ResultSet, ignoreTable bool) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("columns: got %d, want %d", len(got.Columns), len(want.Columns))
	}
	for i, wc := range want.Columns {
		gc := got.Columns[i]
		if gc.Name != wc.Name || gc.Type != wc.Type {
			t.Fatalf("column %d: got %s %s, want %s %s", i, gc.Name, gc.Type, wc.Name, wc.Type)
		}
		if !ignoreTable && gc.Table != wc.Table {
			t.Fatalf("column %d table: got %q, want %q", i, gc.Table, wc.Table)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows: got %d, want %d", len(got.Rows), len(want.Rows))
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			if !equalValue(want.Rows[r][c], got.Rows[r][c]) {
				t.Fatalf("cell [%d][%d] (%s): got %s %q null=%v, want %s %q null=%v",
					r, c, want.Columns[c].Type,
					got.Rows[r][c].Type, got.Rows[r][c].String(), got.Rows[r][c].IsNull(),
					want.Rows[r][c].Type, want.Rows[r][c].String(), want.Rows[r][c].IsNull())
			}
		}
	}
}

func allCodecs() []Codec {
	return []Codec{SQLRowsetCodec{}, WebRowSetCodec{}, CSVCodec{}}
}

// TestCodecRoundTripProperty: for every codec, decode∘encode preserves
// all values, and encode∘decode∘encode is byte-identical — encoding is
// canonical, so a relay that decodes and re-encodes a rowset (the
// paper's data-transport scenario) cannot corrupt it.
func TestCodecRoundTripProperty(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		t.Run(c.FormatURI(), func(t *testing.T) {
			for seed := int64(0); seed < 60; seed++ {
				rng := rand.New(rand.NewSource(seed))
				rs := randomResultSet(rng)
				data, err := c.Encode(rs)
				if err != nil {
					t.Fatalf("seed %d: encode: %v", seed, err)
				}
				dec, err := c.Decode(data)
				if err != nil {
					t.Fatalf("seed %d: decode: %v\nencoded: %s", seed, err, data)
				}
				assertEqualSets(t, rs, dec, c.FormatURI() == FormatCSV)
				again, err := c.Encode(dec)
				if err != nil {
					t.Fatalf("seed %d: re-encode: %v", seed, err)
				}
				if !bytes.Equal(data, again) {
					t.Fatalf("seed %d: re-encode not canonical\nfirst:  %s\nsecond: %s", seed, data, again)
				}
			}
		})
	}
}

// TestEncodeWindowMatchesSliceEncode: the zero-materialisation
// EncodeRange fast path must be byte-identical to encoding a Slice
// page, for every codec, across random windows including degenerate
// ones (start before 1, start past the end, zero and oversized counts).
func TestEncodeWindowMatchesSliceEncode(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		t.Run(c.FormatURI(), func(t *testing.T) {
			for seed := int64(100); seed < 140; seed++ {
				rng := rand.New(rand.NewSource(seed))
				rs := randomResultSet(rng)
				for trial := 0; trial < 8; trial++ {
					sp := rng.Intn(len(rs.Rows)+4) - 1 // [-1, len+2]
					n := rng.Intn(len(rs.Rows) + 3)
					fast, err := EncodeWindow(c, rs, sp, n)
					if err != nil {
						t.Fatalf("seed %d sp=%d n=%d: EncodeWindow: %v", seed, sp, n, err)
					}
					slow, err := c.Encode(Slice(rs, sp, n))
					if err != nil {
						t.Fatalf("seed %d sp=%d n=%d: Encode(Slice): %v", seed, sp, n, err)
					}
					if !bytes.Equal(fast, slow) {
						t.Fatalf("seed %d sp=%d n=%d: windowed bytes differ from sliced bytes\nwindow: %s\nslice:  %s",
							seed, sp, n, fast, slow)
					}
				}
			}
		})
	}
}

// TestUntypedColumnWindowIdentity: computed (TypeNull) columns infer
// their wire type from the rows in view. A window whose rows disagree
// with the whole set about the first non-null value must still render
// identically via both paths, and an all-NULL window decays to VARCHAR.
func TestUntypedColumnWindowIdentity(t *testing.T) {
	rs := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "expr", Type: sqlengine.TypeNull},
			{Name: "id", Type: sqlengine.TypeInteger},
		},
		Rows: [][]sqlengine.Value{
			{sqlengine.Null, sqlengine.NewInt(1)},
			{sqlengine.NewDouble(2.5), sqlengine.NewInt(2)},
			{sqlengine.Null, sqlengine.NewInt(3)},
		},
	}
	for _, c := range allCodecs() {
		name := c.FormatURI()
		// Window [3,1): only the NULL row — the untyped column decays to
		// VARCHAR, exactly as encoding the slice would.
		for _, w := range [][2]int{{1, 3}, {3, 1}, {2, 2}, {1, 0}} {
			fast, err := EncodeWindow(c, rs, w[0], w[1])
			if err != nil {
				t.Fatalf("%s window %v: %v", name, w, err)
			}
			slow, err := c.Encode(Slice(rs, w[0], w[1]))
			if err != nil {
				t.Fatalf("%s slice %v: %v", name, w, err)
			}
			if !bytes.Equal(fast, slow) {
				t.Fatalf("%s window %v: bytes differ\nwindow: %s\nslice:  %s", name, w, fast, slow)
			}
		}
		// Whole-set decode resolves the computed column to its runtime
		// type (DOUBLE, from the first non-null value).
		data, err := c.Encode(rs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dec, err := c.Decode(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dec.Columns[0].Type != sqlengine.TypeDouble {
			t.Fatalf("%s: computed column decoded as %s, want DOUBLE", name, dec.Columns[0].Type)
		}
	}
}
