package rowset

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"dais/internal/sqlengine"
)

// Spill page format: one self-delimiting record per sealed page,
// appended to a single file per resource. Layout:
//
//	uvarint rowCount
//	uvarint width
//	rowCount * width values, each:
//	    1 byte  type (sqlengine.Type)
//	    payload by type:
//	        NULL               — nothing
//	        INTEGER/BIGINT     — zigzag varint
//	        DOUBLE             — 8 bytes little-endian IEEE-754 bits
//	        VARCHAR            — uvarint length + bytes
//	        BOOLEAN            — 1 byte (0/1)
//	        TIMESTAMP          — uvarint length + time.MarshalBinary
//
// The format round-trips sqlengine.Value exactly (type, width and
// payload), which is what keeps spilled GetTuples pages byte-identical
// to in-memory ones: the codecs see the same values either way.

// encodeSpillPage renders one page of rows.
func encodeSpillPage(rows [][]sqlengine.Value) []byte {
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	buf := make([]byte, 0, 16+len(rows)*width*8)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	buf = binary.AppendUvarint(buf, uint64(width))
	for _, row := range rows {
		for _, v := range row {
			buf = appendSpillValue(buf, v)
		}
	}
	return buf
}

func appendSpillValue(buf []byte, v sqlengine.Value) []byte {
	buf = append(buf, byte(v.Type))
	switch v.Type {
	case sqlengine.TypeNull:
	case sqlengine.TypeInteger, sqlengine.TypeBigint:
		buf = binary.AppendVarint(buf, v.I)
	case sqlengine.TypeDouble:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case sqlengine.TypeVarchar:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case sqlengine.TypeBoolean:
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case sqlengine.TypeTimestamp:
		// MarshalBinary on a wall-clock time cannot fail.
		tb, _ := v.T.MarshalBinary()
		buf = binary.AppendUvarint(buf, uint64(len(tb)))
		buf = append(buf, tb...)
	}
	return buf
}

// decodeSpillPage parses one record produced by encodeSpillPage.
func decodeSpillPage(data []byte) ([][]sqlengine.Value, error) {
	rowCount, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("bad row count")
	}
	data = data[n:]
	width, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("bad width")
	}
	data = data[n:]
	rows := make([][]sqlengine.Value, rowCount)
	slab := make([]sqlengine.Value, rowCount*width)
	for i := range rows {
		rows[i] = slab[uint64(i)*width : (uint64(i)+1)*width : (uint64(i)+1)*width]
		for j := range rows[i] {
			v, rest, err := decodeSpillValue(data)
			if err != nil {
				return nil, fmt.Errorf("row %d col %d: %w", i, j, err)
			}
			rows[i][j] = v
			data = rest
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%d trailing bytes", len(data))
	}
	return rows, nil
}

func decodeSpillValue(data []byte) (sqlengine.Value, []byte, error) {
	if len(data) == 0 {
		return sqlengine.Null, nil, fmt.Errorf("truncated value")
	}
	t := sqlengine.Type(data[0])
	data = data[1:]
	switch t {
	case sqlengine.TypeNull:
		return sqlengine.Null, data, nil
	case sqlengine.TypeInteger, sqlengine.TypeBigint:
		i, n := binary.Varint(data)
		if n <= 0 {
			return sqlengine.Null, nil, fmt.Errorf("bad integer")
		}
		return sqlengine.Value{Type: t, I: i}, data[n:], nil
	case sqlengine.TypeDouble:
		if len(data) < 8 {
			return sqlengine.Null, nil, fmt.Errorf("truncated double")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(data))
		return sqlengine.NewDouble(f), data[8:], nil
	case sqlengine.TypeVarchar:
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return sqlengine.Null, nil, fmt.Errorf("bad string length")
		}
		return sqlengine.NewString(string(data[n : uint64(n)+l])), data[uint64(n)+l:], nil
	case sqlengine.TypeBoolean:
		if len(data) < 1 {
			return sqlengine.Null, nil, fmt.Errorf("truncated boolean")
		}
		return sqlengine.NewBool(data[0] != 0), data[1:], nil
	case sqlengine.TypeTimestamp:
		l, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < l {
			return sqlengine.Null, nil, fmt.Errorf("bad timestamp length")
		}
		var tm time.Time
		if err := tm.UnmarshalBinary(data[uint64(n) : uint64(n)+l]); err != nil {
			return sqlengine.Null, nil, fmt.Errorf("timestamp: %w", err)
		}
		return sqlengine.NewTimestamp(tm), data[uint64(n)+l:], nil
	}
	return sqlengine.Null, nil, fmt.Errorf("unknown type byte %d", t)
}
