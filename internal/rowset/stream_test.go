package rowset

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"dais/internal/filestore"
	"dais/internal/sqlengine"
)

// corpusSet builds a result set covering every value type (including
// NULLs and an untyped computed column) so buffer and spill paths face
// the same inference and round-trip hazards the codecs do.
func corpusSet(rows int) *sqlengine.ResultSet {
	set := &sqlengine.ResultSet{
		Columns: []sqlengine.ResultColumn{
			{Name: "id", Type: sqlengine.TypeInteger, Table: "t"},
			{Name: "big", Type: sqlengine.TypeBigint, Table: "t"},
			{Name: "name", Type: sqlengine.TypeVarchar, Table: "t"},
			{Name: "score", Type: sqlengine.TypeNull},
			{Name: "ok", Type: sqlengine.TypeBoolean, Table: "t"},
			{Name: "at", Type: sqlengine.TypeTimestamp, Table: "t"},
		},
	}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		score := sqlengine.NewDouble(float64(i) / 8)
		if i%5 == 0 {
			score = sqlengine.Null
		}
		set.Rows = append(set.Rows, []sqlengine.Value{
			sqlengine.NewInt(int64(i)),
			sqlengine.NewBigint(int64(i) * -1_000_000_007),
			sqlengine.NewString(fmt.Sprintf("row-%04d", i)),
			score,
			sqlengine.NewBool(i%2 == 0),
			sqlengine.NewTimestamp(base.Add(time.Duration(i) * time.Second)),
		})
	}
	return set
}

func TestSpillPageRoundTrip(t *testing.T) {
	rows := corpusSet(37).Rows
	got, err := decodeSpillPage(encodeSpillPage(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			a, b := rows[i][j], got[i][j]
			if a.Type != b.Type || a.I != b.I || a.F != b.F || a.S != b.S || a.B != b.B || !a.T.Equal(b.T) {
				t.Fatalf("row %d col %d: %+v != %+v", i, j, a, b)
			}
			if a.String() != b.String() {
				t.Fatalf("row %d col %d renders %q, want %q", i, j, b.String(), a.String())
			}
		}
	}
}

func TestSpillPageRoundTripEmpty(t *testing.T) {
	got, err := decodeSpillPage(encodeSpillPage(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestBufferWindowsMatchMaterialised is the streaming arm of the
// equivalence corpus: every GetTuples window served out of a buffer —
// in memory or spilled — must encode byte-identically to the
// materialised path, for every codec.
func TestBufferWindowsMatchMaterialised(t *testing.T) {
	rs := corpusSet(103)
	windows := [][2]int{{1, 10}, {5, 7}, {97, 100}, {1, 103}, {200, 5}, {3, 0}, {-4, 6}, {103, 1}}
	reg := NewRegistry()
	configs := map[string]BufferConfig{
		"in-memory": {PageRows: 16},
		"spilled": {
			PageRows: 16,
			MemCap:   1, // force every sealed page out
			Spill:    filestore.NewStore("spill-test"),
		},
	}
	for cfgName, cfg := range configs {
		cfg.SpillName = "corpus.spill"
		buf := NewBuffer(NewSetSource(rs), cfg)
		if _, err := buf.FinalCount(context.Background()); err != nil {
			t.Fatal(err)
		}
		if cfgName == "spilled" && buf.SpilledBytes() == 0 {
			t.Fatal("expected pages to spill")
		}
		for _, uri := range reg.URIs() {
			codec, err := reg.Lookup(uri)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range windows {
				start, count := w[0], w[1]
				want, err := EncodeWindow(codec, rs, start, count)
				if err != nil {
					t.Fatal(err)
				}
				page, err := buf.Window(context.Background(), start, count)
				if err != nil {
					t.Fatal(err)
				}
				got, err := codec.Encode(page)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%s window (%d,%d): streamed page differs from materialised:\n%s\n---\n%s",
						cfgName, uri, start, count, got, want)
				}
			}
		}
		buf.Release()
	}
}

// slowSource trickles rows out with a tiny delay so reads genuinely
// overlap production.
type slowSource struct {
	rs    *sqlengine.ResultSet
	pos   int
	delay time.Duration
}

func (s *slowSource) Columns() []sqlengine.ResultColumn { return s.rs.Columns }

func (s *slowSource) Next() ([]sqlengine.Value, error) {
	if s.pos >= len(s.rs.Rows) {
		return nil, io.EOF
	}
	time.Sleep(s.delay)
	row := s.rs.Rows[s.pos]
	s.pos++
	return row, nil
}

func (s *slowSource) Close() error { return nil }

func TestBufferWindowBlocksForTail(t *testing.T) {
	rs := corpusSet(50)
	buf := NewBuffer(&slowSource{rs: rs, delay: 200 * time.Microsecond}, BufferConfig{PageRows: 8})
	defer buf.Release()
	// Ask for the tail immediately: the call must block until rows 41..50
	// exist, then return exactly them.
	set, err := buf.Window(context.Background(), 41, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rows) != 10 || set.Rows[0][0].I != 40 || set.Rows[9][0].I != 49 {
		t.Fatalf("tail window = %d rows, first %v", len(set.Rows), set.Rows[0][0])
	}
	n, err := buf.FinalCount(context.Background())
	if err != nil || n != 50 {
		t.Fatalf("final count = %d, %v", n, err)
	}
}

func TestBufferWindowHonoursContext(t *testing.T) {
	rs := corpusSet(5)
	blocked := make(chan struct{})
	src := &stuckSource{rs: rs, stuckAt: 3, blocked: blocked}
	buf := NewBuffer(src, BufferConfig{PageRows: 2})
	defer buf.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := buf.Window(ctx, 1, 5); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	close(blocked)
}

// stuckSource produces stuckAt rows then blocks until released.
type stuckSource struct {
	rs      *sqlengine.ResultSet
	pos     int
	stuckAt int
	blocked chan struct{}
}

func (s *stuckSource) Columns() []sqlengine.ResultColumn { return s.rs.Columns }

func (s *stuckSource) Next() ([]sqlengine.Value, error) {
	if s.pos >= s.stuckAt {
		<-s.blocked
		return nil, io.EOF
	}
	row := s.rs.Rows[s.pos]
	s.pos++
	return row, nil
}

func (s *stuckSource) Close() error { return nil }

// failSource produces okRows rows then fails.
type failSource struct {
	rs     *sqlengine.ResultSet
	pos    int
	okRows int
}

func (s *failSource) Columns() []sqlengine.ResultColumn { return s.rs.Columns }

func (s *failSource) Next() ([]sqlengine.Value, error) {
	if s.pos >= s.okRows {
		return nil, fmt.Errorf("mid-stream failure")
	}
	row := s.rs.Rows[s.pos]
	s.pos++
	return row, nil
}

func (s *failSource) Close() error { return nil }

func TestBufferProductionErrorSurfaces(t *testing.T) {
	rs := corpusSet(20)
	buf := NewBuffer(&failSource{rs: rs, okRows: 7}, BufferConfig{PageRows: 4})
	defer buf.Release()
	// Even a window over already-produced rows reports the failure: a
	// partial result from a failed query must never be served.
	if _, err := buf.Window(context.Background(), 1, 2); err == nil {
		t.Fatal("window over failed production should error")
	}
	if _, err := buf.FinalCount(context.Background()); err == nil {
		t.Fatal("final count over failed production should error")
	}
	if buf.Err() == nil {
		t.Fatal("Err should report the production failure")
	}
}

func TestBufferReleaseDeletesSpillAndStopsProducer(t *testing.T) {
	store := filestore.NewStore("spill-test")
	rs := corpusSet(200)
	buf := NewBuffer(&slowSource{rs: rs, delay: 50 * time.Microsecond}, BufferConfig{
		PageRows:  8,
		MemCap:    1,
		Spill:     store,
		SpillName: "victim.spill",
	})
	// Wait until something has spilled, then walk away mid-production.
	for buf.SpilledBytes() == 0 && !buf.Done() {
		time.Sleep(time.Millisecond)
	}
	buf.Release()
	deadline := time.Now().Add(2 * time.Second)
	for store.Count() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if store.Count() != 0 {
		t.Fatalf("spill file survived release: %d files", store.Count())
	}
	if _, err := buf.Window(context.Background(), 1, 1); err == nil {
		t.Fatal("window after release should error")
	}
}

func TestBufferRefCounting(t *testing.T) {
	rs := corpusSet(10)
	buf := NewBuffer(NewSetSource(rs), BufferConfig{PageRows: 4})
	buf.Retain()
	buf.Release() // drops the Retain
	if _, err := buf.Window(context.Background(), 1, 10); err != nil {
		t.Fatalf("buffer died with a live reference: %v", err)
	}
	buf.Release() // drops the initial reference
	if _, err := buf.Window(context.Background(), 1, 1); err == nil {
		t.Fatal("window after last release should error")
	}
}

func TestBufferHooksObserveProductionAndSpill(t *testing.T) {
	var mu sync.Mutex
	var produced, depth int
	var spilledBytes int64
	hooks := Hooks{
		RowsProduced: func(n int) { mu.Lock(); produced += n; mu.Unlock() },
		SpilledBytes: func(n int64) { mu.Lock(); spilledBytes += n; mu.Unlock() },
		BufferDepth:  func(d int) { mu.Lock(); depth += d; mu.Unlock() },
	}
	store := filestore.NewStore("spill-test")
	rs := corpusSet(100)
	buf := NewBuffer(NewSetSource(rs), BufferConfig{
		PageRows: 10, MemCap: 1, Spill: store, SpillName: "hooked.spill", Hooks: hooks,
	})
	if _, err := buf.FinalCount(context.Background()); err != nil {
		t.Fatal(err)
	}
	buf.Release()
	mu.Lock()
	defer mu.Unlock()
	if produced != 100 {
		t.Fatalf("produced = %d, want 100", produced)
	}
	if spilledBytes == 0 {
		t.Fatal("no spill observed")
	}
	if depth != 0 {
		t.Fatalf("depth should return to zero after release, got %d", depth)
	}
}

// TestBufferConcurrentReaders hammers one spilling buffer from many
// goroutines while it is still producing — the service-side shape of
// concurrent chunked fetch — and checks every window against the
// source. Run with -race this doubles as the locking proof.
func TestBufferConcurrentReaders(t *testing.T) {
	rs := corpusSet(600)
	store := filestore.NewStore("spill-test")
	buf := NewBuffer(&slowSource{rs: rs, delay: 5 * time.Microsecond}, BufferConfig{
		PageRows: 32, MemCap: 4096, Spill: store, SpillName: "conc.spill",
	})
	defer buf.Release()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				start := (w*37+i*61)%600 + 1
				count := 50
				set, err := buf.Window(context.Background(), start, count)
				if err != nil {
					errs <- err
					return
				}
				from, to := windowRange(600, start, count)
				if len(set.Rows) > to-from {
					errs <- fmt.Errorf("window (%d,%d): %d rows, want at most %d", start, count, len(set.Rows), to-from)
					return
				}
				for j, row := range set.Rows {
					if row[0].I != int64(from+j) {
						errs <- fmt.Errorf("window (%d,%d) row %d: id %d, want %d", start, count, j, row[0].I, from+j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
