// Package rowset implements the dataset representations a WS-DAIR
// service can return and the DatasetMap machinery that advertises them.
//
// The WS-DAI DatasetMap property "provides a means of specifying the
// valid return formats supported by a data service, there will be one
// of these elements for each possible supported return type" (paper
// §4.2); consumers pick one by sending its DataFormatURI in the request
// (paper §4.1). Three formats ship: an XML SQLRowset (the WS-DAIR
// native rendering), the WebRowSet rendering referenced in the paper's
// Fig. 5 pipeline, and CSV for lightweight consumers.
package rowset

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// Format URIs advertised through DatasetMap properties.
const (
	FormatSQLRowset = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/SQLRowset"
	FormatWebRowSet = "http://java.sun.com/xml/ns/jdbc/webrowset"
	FormatCSV       = "http://www.ggf.org/namespaces/2005/12/WS-DAIR/CSV"
)

// Codec encodes and decodes a materialised result set in one dataset
// format.
type Codec interface {
	// FormatURI is the DataFormatURI identifying this codec.
	FormatURI() string
	// Encode renders the result set.
	Encode(rs *sqlengine.ResultSet) ([]byte, error)
	// Decode parses a rendering produced by Encode.
	Decode(data []byte) (*sqlengine.ResultSet, error)
}

// Registry maps format URIs to codecs; it backs a data service's
// DatasetMap property.
type Registry struct {
	mu     sync.RWMutex
	codecs map[string]Codec
}

// NewRegistry returns a registry preloaded with the three standard
// codecs.
func NewRegistry() *Registry {
	r := &Registry{codecs: map[string]Codec{}}
	r.Register(SQLRowsetCodec{})
	r.Register(WebRowSetCodec{})
	r.Register(CSVCodec{})
	return r
}

// Register adds (or replaces) a codec.
func (r *Registry) Register(c Codec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.codecs[c.FormatURI()] = c
}

// Lookup resolves a format URI. An empty URI selects the SQLRowset
// default, matching the WS-DAI rule that DataFormatURI is optional.
func (r *Registry) Lookup(uri string) (Codec, error) {
	if uri == "" {
		uri = FormatSQLRowset
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.codecs[uri]
	if !ok {
		return nil, fmt.Errorf("rowset: unsupported dataset format %q", uri)
	}
	return c, nil
}

// URIs lists the registered format URIs, sorted, for DatasetMap
// property rendering.
func (r *Registry) URIs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.codecs))
	for u := range r.codecs {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// typeName/typeFromName serialise column types.
func typeName(t sqlengine.Type) string { return t.String() }

// effectiveColumns resolves untyped (computed) columns by inferring the
// type from the first non-null value in that column, so expressions
// like AVG(x) round-trip with their runtime type instead of decaying to
// VARCHAR.
func effectiveColumns(rs *sqlengine.ResultSet) []sqlengine.ResultColumn {
	return effectiveColumnsRange(rs, 0, len(rs.Rows))
}

// effectiveColumnsRange is effectiveColumns restricted to the row
// window [from, to): type inference scans only the rows a range encode
// will render, which keeps windowed output byte-identical to encoding
// a materialised page.
func effectiveColumnsRange(rs *sqlengine.ResultSet, from, to int) []sqlengine.ResultColumn {
	cols := append([]sqlengine.ResultColumn(nil), rs.Columns...)
	for i := range cols {
		if cols[i].Type != sqlengine.TypeNull {
			continue
		}
		for _, row := range rs.Rows[from:to] {
			if !row[i].IsNull() {
				cols[i].Type = row[i].Type
				break
			}
		}
		if cols[i].Type == sqlengine.TypeNull {
			cols[i].Type = sqlengine.TypeVarchar
		}
	}
	return cols
}

func typeFromName(s string) sqlengine.Type {
	t, err := sqlengine.TypeFromName(s)
	if err != nil {
		return sqlengine.TypeVarchar
	}
	return t
}

// valueFromText reconstructs a typed value from its string rendering.
func valueFromText(t sqlengine.Type, text string, isNull bool) (sqlengine.Value, error) {
	if isNull {
		return sqlengine.Null, nil
	}
	return sqlengine.NewString(text).Coerce(t)
}

// --- SQLRowset XML ---

// NSDAIR is the WS-DAIR namespace used by the SQLRowset rendering.
const NSDAIR = "http://www.ggf.org/namespaces/2005/12/WS-DAIR"

// SQLRowsetCodec is the WS-DAIR native XML rendering: column metadata
// followed by row elements.
type SQLRowsetCodec struct{}

// FormatURI identifies the SQLRowset format.
func (SQLRowsetCodec) FormatURI() string { return FormatSQLRowset }

// Encode renders the result set as an SQLRowset element.
func (c SQLRowsetCodec) Encode(rs *sqlengine.ResultSet) ([]byte, error) {
	return c.EncodeRange(rs, 0, len(rs.Rows))
}

// EncodeRange renders rows [from, to) directly from the stored result
// set, without materialising an intermediate page. It writes the bytes
// straight from the values — no element tree — and its output is
// byte-identical to marshalling SQLRowsetElement (pinned by test), so
// consumers cannot tell which path produced a page.
func (SQLRowsetCodec) EncodeRange(rs *sqlengine.ResultSet, from, to int) ([]byte, error) {
	var b bytes.Buffer
	b.Grow(256 + 48*(to-from)*(len(rs.Columns)+1))
	b.WriteString(`<ns0:SQLRowset xmlns:ns0="` + NSDAIR + `"><ns0:Metadata>`)
	for _, c := range effectiveColumnsRange(rs, from, to) {
		b.WriteString(`<ns0:Column name="`)
		xmlutil.EscapeTo(&b, c.Name, true)
		b.WriteString(`" type="`)
		xmlutil.EscapeTo(&b, typeName(c.Type), true)
		if c.Table != "" {
			b.WriteString(`" table="`)
			xmlutil.EscapeTo(&b, c.Table, true)
		}
		b.WriteString(`"/>`)
	}
	b.WriteString(`</ns0:Metadata>`)
	for _, row := range rs.Rows[from:to] {
		b.WriteString(`<ns0:Row>`)
		for _, v := range row {
			switch {
			case v.IsNull():
				b.WriteString(`<ns0:Value isNull="true"/>`)
			case v.Type == sqlengine.TypeVarchar:
				// Note "" still takes this shape (SetText("") leaves a text
				// node, so the tree path never emits <Value/> here either).
				b.WriteString(`<ns0:Value>`)
				xmlutil.EscapeTo(&b, v.S, false)
				b.WriteString(`</ns0:Value>`)
			default:
				// Non-string renderings never contain markup characters.
				b.WriteString(`<ns0:Value>`)
				b.Write(v.AppendText(b.AvailableBuffer()))
				b.WriteString(`</ns0:Value>`)
			}
		}
		b.WriteString(`</ns0:Row>`)
	}
	b.WriteString(`</ns0:SQLRowset>`)
	return b.Bytes(), nil
}

// SQLRowsetElement builds the XML tree without serialising, for callers
// that embed the rowset inside a SOAP response.
func SQLRowsetElement(rs *sqlengine.ResultSet) *xmlutil.Element {
	return sqlRowsetRangeElement(rs, 0, len(rs.Rows))
}

func sqlRowsetRangeElement(rs *sqlengine.ResultSet, from, to int) *xmlutil.Element {
	root := xmlutil.NewElement(NSDAIR, "SQLRowset")
	meta := root.Add(NSDAIR, "Metadata")
	for _, c := range effectiveColumnsRange(rs, from, to) {
		col := meta.Add(NSDAIR, "Column")
		col.SetAttr("", "name", c.Name)
		col.SetAttr("", "type", typeName(c.Type))
		if c.Table != "" {
			col.SetAttr("", "table", c.Table)
		}
	}
	for _, row := range rs.Rows[from:to] {
		re := root.Add(NSDAIR, "Row")
		for _, v := range row {
			ce := re.Add(NSDAIR, "Value")
			if v.IsNull() {
				ce.SetAttr("", "isNull", "true")
			} else {
				ce.SetText(v.String())
			}
		}
	}
	return root
}

// Decode parses an SQLRowset rendering.
func (SQLRowsetCodec) Decode(data []byte) (*sqlengine.ResultSet, error) {
	root, err := xmlutil.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("rowset: %w", err)
	}
	return DecodeSQLRowsetElement(root)
}

// DecodeSQLRowsetElement reconstructs a result set from an SQLRowset
// element tree.
func DecodeSQLRowsetElement(root *xmlutil.Element) (*sqlengine.ResultSet, error) {
	if root.Name.Local != "SQLRowset" {
		return nil, fmt.Errorf("rowset: root element %s is not SQLRowset", root.Name)
	}
	rs := &sqlengine.ResultSet{}
	meta := root.Find(NSDAIR, "Metadata")
	if meta == nil {
		return nil, fmt.Errorf("rowset: SQLRowset missing Metadata")
	}
	for _, c := range meta.FindAll(NSDAIR, "Column") {
		rs.Columns = append(rs.Columns, sqlengine.ResultColumn{
			Name:  c.AttrValue("", "name"),
			Type:  typeFromName(c.AttrValue("", "type")),
			Table: c.AttrValue("", "table"),
		})
	}
	for _, re := range root.FindAll(NSDAIR, "Row") {
		vals := re.FindAll(NSDAIR, "Value")
		if len(vals) != len(rs.Columns) {
			return nil, fmt.Errorf("rowset: row has %d values for %d columns", len(vals), len(rs.Columns))
		}
		row := make([]sqlengine.Value, len(vals))
		for i, ve := range vals {
			v, err := valueFromText(rs.Columns[i].Type, ve.Text(), ve.AttrValue("", "isNull") == "true")
			if err != nil {
				return nil, fmt.Errorf("rowset: column %s: %w", rs.Columns[i].Name, err)
			}
			row[i] = v
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// --- WebRowSet ---

// NSWebRowSet is the Sun WebRowSet schema namespace.
const NSWebRowSet = "http://java.sun.com/xml/ns/jdbc"

// WebRowSetCodec renders results in the JDBC WebRowSet XML dialect the
// paper's Fig. 5 pipeline converts into (properties/metadata/data with
// currentRow/columnValue entries).
type WebRowSetCodec struct{}

// FormatURI identifies the WebRowSet format.
func (WebRowSetCodec) FormatURI() string { return FormatWebRowSet }

// Encode renders the result set as a webRowSet document.
func (c WebRowSetCodec) Encode(rs *sqlengine.ResultSet) ([]byte, error) {
	return c.EncodeRange(rs, 0, len(rs.Rows))
}

// EncodeRange renders rows [from, to) directly from the stored result
// set, without materialising an intermediate page.
func (WebRowSetCodec) EncodeRange(rs *sqlengine.ResultSet, from, to int) ([]byte, error) {
	root := xmlutil.NewElement(NSWebRowSet, "webRowSet")
	props := root.Add(NSWebRowSet, "properties")
	props.AddText(NSWebRowSet, "concurrency", "1007")
	props.AddText(NSWebRowSet, "rowset-type", "ResultSet.TYPE_SCROLL_INSENSITIVE")

	meta := root.Add(NSWebRowSet, "metadata")
	meta.AddText(NSWebRowSet, "column-count", fmt.Sprintf("%d", len(rs.Columns)))
	for i, c := range effectiveColumnsRange(rs, from, to) {
		cd := meta.Add(NSWebRowSet, "column-definition")
		cd.AddText(NSWebRowSet, "column-index", fmt.Sprintf("%d", i+1))
		cd.AddText(NSWebRowSet, "column-name", c.Name)
		cd.AddText(NSWebRowSet, "column-type-name", typeName(c.Type))
		if c.Table != "" {
			cd.AddText(NSWebRowSet, "table-name", c.Table)
		}
	}
	data := root.Add(NSWebRowSet, "data")
	for _, row := range rs.Rows[from:to] {
		cr := data.Add(NSWebRowSet, "currentRow")
		for _, v := range row {
			cv := cr.Add(NSWebRowSet, "columnValue")
			if v.IsNull() {
				cv.Add(NSWebRowSet, "null")
			} else {
				cv.SetText(v.String())
			}
		}
	}
	return xmlutil.Marshal(root), nil
}

// Decode parses a webRowSet document.
func (WebRowSetCodec) Decode(data []byte) (*sqlengine.ResultSet, error) {
	root, err := xmlutil.Parse(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("rowset: %w", err)
	}
	if root.Name.Local != "webRowSet" {
		return nil, fmt.Errorf("rowset: root element %s is not webRowSet", root.Name)
	}
	rs := &sqlengine.ResultSet{}
	meta := root.Find(NSWebRowSet, "metadata")
	if meta == nil {
		return nil, fmt.Errorf("rowset: webRowSet missing metadata")
	}
	for _, cd := range meta.FindAll(NSWebRowSet, "column-definition") {
		rs.Columns = append(rs.Columns, sqlengine.ResultColumn{
			Name:  cd.FindText(NSWebRowSet, "column-name"),
			Type:  typeFromName(cd.FindText(NSWebRowSet, "column-type-name")),
			Table: cd.FindText(NSWebRowSet, "table-name"),
		})
	}
	dataEl := root.Find(NSWebRowSet, "data")
	if dataEl == nil {
		return nil, fmt.Errorf("rowset: webRowSet missing data")
	}
	for _, cr := range dataEl.FindAll(NSWebRowSet, "currentRow") {
		cvs := cr.FindAll(NSWebRowSet, "columnValue")
		if len(cvs) != len(rs.Columns) {
			return nil, fmt.Errorf("rowset: row has %d values for %d columns", len(cvs), len(rs.Columns))
		}
		row := make([]sqlengine.Value, len(cvs))
		for i, cv := range cvs {
			isNull := cv.Find(NSWebRowSet, "null") != nil
			v, err := valueFromText(rs.Columns[i].Type, cv.Text(), isNull)
			if err != nil {
				return nil, fmt.Errorf("rowset: column %s: %w", rs.Columns[i].Name, err)
			}
			row[i] = v
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// --- CSV ---

// CSVCodec renders results as RFC 4180 CSV. The first line carries
// "name:TYPE" headers; NULL is encoded as an empty unquoted field with
// a sentinel, so it survives round trips for VARCHAR columns too.
type CSVCodec struct{}

// nullSentinel marks SQL NULL in CSV output and emptySentinel marks the
// empty string (a row of empty fields would otherwise serialise as a
// blank line, which csv.Reader skips). Literal fields starting with a
// backslash are escaped by doubling it.
const (
	nullSentinel  = `\N`
	emptySentinel = `\E`
)

// FormatURI identifies the CSV format.
func (CSVCodec) FormatURI() string { return FormatCSV }

// Encode renders the result set as CSV with a typed header row.
func (c CSVCodec) Encode(rs *sqlengine.ResultSet) ([]byte, error) {
	return c.EncodeRange(rs, 0, len(rs.Rows))
}

// EncodeRange renders rows [from, to) directly from the stored result
// set, without materialising an intermediate page.
func (CSVCodec) EncodeRange(rs *sqlengine.ResultSet, from, to int) ([]byte, error) {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	header := make([]string, len(rs.Columns))
	for i, c := range effectiveColumnsRange(rs, from, to) {
		header[i] = c.Name + ":" + typeName(c.Type)
	}
	if err := w.Write(header); err != nil {
		return nil, err
	}
	rec := make([]string, len(rs.Columns))
	for _, row := range rs.Rows[from:to] {
		for i, v := range row {
			switch {
			case v.IsNull():
				rec[i] = nullSentinel
			case v.String() == "":
				rec[i] = emptySentinel
			case strings.HasPrefix(v.String(), `\`):
				rec[i] = `\` + v.String()
			default:
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return nil, err
		}
	}
	w.Flush()
	return buf.Bytes(), w.Error()
}

// Decode parses CSV produced by Encode.
func (CSVCodec) Decode(data []byte) (*sqlengine.ResultSet, error) {
	r := csv.NewReader(bytes.NewReader(data))
	records, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("rowset: csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("rowset: csv missing header")
	}
	rs := &sqlengine.ResultSet{}
	for _, h := range records[0] {
		name, tname := h, "VARCHAR"
		if i := strings.LastIndex(h, ":"); i >= 0 {
			name, tname = h[:i], h[i+1:]
		}
		rs.Columns = append(rs.Columns, sqlengine.ResultColumn{Name: name, Type: typeFromName(tname)})
	}
	for _, rec := range records[1:] {
		if len(rec) != len(rs.Columns) {
			return nil, fmt.Errorf("rowset: csv row has %d fields for %d columns", len(rec), len(rs.Columns))
		}
		row := make([]sqlengine.Value, len(rec))
		for i, f := range rec {
			switch {
			case f == nullSentinel:
				row[i] = sqlengine.Null
			case f == emptySentinel:
				row[i] = sqlengine.NewString("")
			default:
				if strings.HasPrefix(f, `\\`) {
					f = f[1:]
				}
				v, err := valueFromText(rs.Columns[i].Type, f, false)
				if err != nil {
					return nil, fmt.Errorf("rowset: column %s: %w", rs.Columns[i].Name, err)
				}
				row[i] = v
			}
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// RangeEncoder is implemented by codecs that can render a row window
// [from, to) directly from a stored result set, skipping the
// intermediate per-page ResultSet entirely. All three standard codecs
// implement it; EncodeWindow falls back to Slice+Encode for third-party
// codecs that do not.
type RangeEncoder interface {
	EncodeRange(rs *sqlengine.ResultSet, from, to int) ([]byte, error)
}

// Window clamps the 1-based WS-DAIR (StartPosition, Count) pair to the
// 0-based half-open row range [from, to) actually present in rs.
func Window(rs *sqlengine.ResultSet, startPosition, count int) (from, to int) {
	return windowRange(len(rs.Rows), startPosition, count)
}

// windowRange is the clamp shared by the materialised Window and the
// streaming Buffer.Window, so both paths resolve a (StartPosition,
// Count) pair to exactly the same rows.
func windowRange(n, startPosition, count int) (from, to int) {
	if startPosition < 1 {
		startPosition = 1
	}
	from = startPosition - 1
	if from >= n || count <= 0 {
		return 0, 0
	}
	to = from + count
	if to > n {
		to = n
	}
	return from, to
}

// EncodeWindow renders one GetTuples page: through the codec's
// EncodeRange when available, otherwise by encoding a Slice view. The
// two paths produce identical bytes.
func EncodeWindow(c Codec, rs *sqlengine.ResultSet, startPosition, count int) ([]byte, error) {
	if re, ok := c.(RangeEncoder); ok {
		from, to := Window(rs, startPosition, count)
		return re.EncodeRange(rs, from, to)
	}
	return c.Encode(Slice(rs, startPosition, count))
}

// Slice returns a paged view of the result set: rows
// [start, start+count), clamped to the available range. It implements
// the WS-DAIR RowsetAccess GetTuples(StartPosition, Count) semantics,
// where StartPosition is 1-based.
//
// The returned set is a zero-copy window: its Rows slice aliases the
// source's row headers (full-capacity-clamped, so appends to the view
// reallocate instead of clobbering the source). Callers treat pages as
// read-only — they are encoded and discarded — so sharing is safe; use
// Clone-style copying before mutating a page in place.
func Slice(rs *sqlengine.ResultSet, startPosition, count int) *sqlengine.ResultSet {
	out := &sqlengine.ResultSet{Columns: rs.Columns}
	from, to := Window(rs, startPosition, count)
	if from == to {
		return out
	}
	out.Rows = rs.Rows[from:to:to]
	return out
}
