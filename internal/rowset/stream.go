package rowset

import (
	"context"
	"fmt"
	"io"
	"sync"

	"dais/internal/filestore"
	"dais/internal/sqlengine"
)

// RowSource is the pull-based producer side of the streaming delivery
// pipeline: anything that can yield rows one at a time with column
// metadata known up front. Close must be idempotent — the buffer may
// close a source once from the fill goroutine and once from Release.
// *sqlengine.RowStream satisfies the interface structurally;
// NewSetSource adapts an already-materialised result set.
type RowSource interface {
	Columns() []sqlengine.ResultColumn
	Next() ([]sqlengine.Value, error) // io.EOF after the last row
	Close() error
}

// NewSetSource wraps a materialised result set as a RowSource, so the
// buffer machinery can be exercised (and tested) without an engine
// stream behind it.
func NewSetSource(rs *sqlengine.ResultSet) RowSource {
	return &setSource{rs: rs}
}

type setSource struct {
	rs  *sqlengine.ResultSet
	pos int
}

func (s *setSource) Columns() []sqlengine.ResultColumn { return s.rs.Columns }

func (s *setSource) Next() ([]sqlengine.Value, error) {
	if s.pos >= len(s.rs.Rows) {
		return nil, io.EOF
	}
	row := s.rs.Rows[s.pos]
	s.pos++
	return row, nil
}

func (s *setSource) Close() error { return nil }

// Hooks are optional observation callbacks the buffer invokes as it
// works. They exist because this package sits below internal/telemetry
// in the import graph (telemetry → ops → dair → rowset), so the buffer
// cannot bind metrics itself; the service layer supplies callbacks
// that record into its registry. All fields may be nil, and calls are
// batched at page granularity to stay off the per-row hot path.
type Hooks struct {
	// RowsProduced is called with the number of rows newly sealed
	// from the source.
	RowsProduced func(n int)
	// SpilledBytes is called with the encoded size of each page
	// written to the spill store.
	SpilledBytes func(n int64)
	// BufferDepth is called with the delta in memory-resident rows
	// (positive when a page seals in memory, negative when one spills
	// or the buffer is released).
	BufferDepth func(delta int)
}

func (h Hooks) rowsProduced(n int) {
	if h.RowsProduced != nil && n > 0 {
		h.RowsProduced(n)
	}
}

func (h Hooks) spilledBytes(n int64) {
	if h.SpilledBytes != nil && n > 0 {
		h.SpilledBytes(n)
	}
}

func (h Hooks) bufferDepth(delta int) {
	if h.BufferDepth != nil && delta != 0 {
		h.BufferDepth(delta)
	}
}

// BufferConfig tunes a Buffer.
type BufferConfig struct {
	// PageRows is the number of rows per internal page (the spill
	// granularity). Defaults to DefaultPageRows.
	PageRows int
	// MemCap bounds the estimated bytes of row data held in memory;
	// once sealed pages exceed it, the oldest are spilled. Zero (or a
	// nil Spill store) disables spilling: the buffer holds everything
	// in memory like the materialised path.
	MemCap int64
	// Spill is the store completed pages are written to; SpillName is
	// the file they share (each page is one self-delimiting record).
	Spill     *filestore.Store
	SpillName string
	// Hooks observe production, spilling and buffer depth.
	Hooks Hooks
}

// DefaultPageRows is the page granularity when BufferConfig.PageRows
// is unset: large enough to amortise per-page bookkeeping, small
// enough that one page is a cheap unit to spill or decode.
const DefaultPageRows = 1024

// Buffer is the bounded producer/consumer stage between a RowSource
// and GetTuples-style window reads. A fill goroutine drains the source
// as fast as it can, sealing rows into fixed-size pages; readers ask
// for 1-based windows and block only while the window overlaps the
// still-unproduced tail. When the sealed pages exceed MemCap, the
// oldest spill to the filestore and are decoded back on demand, so a
// service-managed rowset can exceed RAM.
//
// Page row slices are never mutated after sealing, so window reads
// alias in-memory pages without copying.
type Buffer struct {
	cfg  BufferConfig
	src  RowSource
	cols []sqlengine.ResultColumn

	mu       sync.Mutex
	pages    []*bufPage
	open     *bufPage      // page currently being filled (not yet sealed)
	produced int           // total rows drained from the source
	resident int64         // estimated bytes of sealed in-memory pages
	spilled  int64         // total bytes written to the spill store
	done     bool          // source exhausted or failed
	err      error         // production error, if any
	waiters  int           // readers blocked on progress
	progress chan struct{} // closed and replaced to wake waiters
	refs     int
	released bool
}

// bufPage is one run of rows. Exactly one of rows / (off, size) is
// live: rows == nil means the page lives in the spill file at
// [off, off+size).
type bufPage struct {
	start int // 0-based index of the first row
	n     int
	rows  [][]sqlengine.Value
	bytes int64 // estimated in-memory size (0 once spilled)
	off   int64
	size  int64
}

// NewBuffer starts draining src under the given config. The returned
// buffer owns src: it is closed when production finishes or the last
// reference is released. The initial reference belongs to the caller —
// pair NewBuffer with Release.
func NewBuffer(src RowSource, cfg BufferConfig) *Buffer {
	if cfg.PageRows <= 0 {
		cfg.PageRows = DefaultPageRows
	}
	if cfg.Spill == nil || cfg.SpillName == "" {
		cfg.MemCap = 0
	}
	b := &Buffer{
		cfg:      cfg,
		src:      src,
		cols:     src.Columns(),
		progress: make(chan struct{}),
		refs:     1,
	}
	go b.fill()
	return b
}

// Columns returns the result column metadata.
func (b *Buffer) Columns() []sqlengine.ResultColumn { return b.cols }

// Produced returns the number of rows drained from the source so far.
func (b *Buffer) Produced() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.produced
}

// Done reports whether production has finished (successfully or not).
func (b *Buffer) Done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done
}

// Err returns the production error, if production has failed.
func (b *Buffer) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// SpilledBytes returns the total bytes written to the spill store.
func (b *Buffer) SpilledBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spilled
}

// fill drains the source into sealed pages until EOF, error or
// release, spilling as the memory cap demands.
func (b *Buffer) fill() {
	for {
		row, err := b.src.Next()
		if err != nil {
			b.finish(err)
			return
		}
		b.mu.Lock()
		if b.released {
			b.mu.Unlock()
			b.finish(io.EOF)
			return
		}
		if b.open == nil {
			b.open = &bufPage{start: b.produced, rows: make([][]sqlengine.Value, 0, b.cfg.PageRows)}
		}
		b.open.rows = append(b.open.rows, row)
		b.open.n++
		b.open.bytes += estimateRowBytes(row)
		b.produced++
		sealed := 0
		if b.open.n >= b.cfg.PageRows {
			sealed = b.sealLocked()
		}
		if b.waiters > 0 {
			b.broadcastLocked()
		}
		b.mu.Unlock()
		if sealed > 0 {
			b.cfg.Hooks.rowsProduced(sealed)
			b.cfg.Hooks.bufferDepth(sealed)
			b.spillOver()
		}
	}
}

// finish seals the trailing partial page, records the terminal state
// and closes the source. err == io.EOF is clean exhaustion.
func (b *Buffer) finish(err error) {
	b.mu.Lock()
	sealed := b.sealLocked()
	b.done = true
	if err != io.EOF {
		b.err = err
	}
	b.broadcastLocked()
	b.mu.Unlock()
	b.cfg.Hooks.rowsProduced(sealed)
	b.cfg.Hooks.bufferDepth(sealed)
	b.spillOver()
	b.src.Close()
}

// sealLocked moves the open page onto the sealed list and returns the
// number of rows sealed. Caller holds b.mu.
func (b *Buffer) sealLocked() int {
	p := b.open
	b.open = nil
	if p == nil || p.n == 0 {
		return 0
	}
	b.pages = append(b.pages, p)
	b.resident += p.bytes
	return p.n
}

// broadcastLocked wakes every blocked reader. Caller holds b.mu.
func (b *Buffer) broadcastLocked() {
	close(b.progress)
	b.progress = make(chan struct{})
}

// await blocks until cond (checked under b.mu) holds or ctx expires.
// It returns with b.mu held on success, released on ctx error.
func (b *Buffer) await(ctx context.Context, cond func() bool) error {
	b.mu.Lock()
	for !cond() {
		b.waiters++
		ch := b.progress
		b.mu.Unlock()
		select {
		case <-ch:
			b.mu.Lock()
		case <-ctx.Done():
			b.mu.Lock()
			b.waiters--
			b.mu.Unlock()
			return ctx.Err()
		}
		b.waiters--
	}
	return nil
}

// spillOver writes the oldest sealed in-memory pages to the spill
// store until the resident estimate is back under the cap. Encoding
// and the store append run outside b.mu — only the page-state flip is
// locked — so readers are never blocked behind I/O.
func (b *Buffer) spillOver() {
	if b.cfg.MemCap <= 0 {
		return
	}
	for {
		b.mu.Lock()
		if b.resident <= b.cfg.MemCap || b.released {
			b.mu.Unlock()
			return
		}
		var victim *bufPage
		for _, p := range b.pages {
			if p.rows != nil {
				victim = p
				break
			}
		}
		if victim == nil {
			b.mu.Unlock()
			return
		}
		rows := victim.rows
		b.mu.Unlock()

		data := encodeSpillPage(rows)
		off, err := b.cfg.Spill.AppendRecord(b.cfg.SpillName, data)
		if err != nil {
			// The store is in-memory and the name pre-validated, so
			// this cannot happen in practice; keep the page resident
			// rather than lose it.
			return
		}

		b.mu.Lock()
		victim.off, victim.size = off, int64(len(data))
		victim.rows = nil
		b.resident -= victim.bytes
		victim.bytes = 0
		b.spilled += int64(len(data))
		freed := victim.n
		b.mu.Unlock()
		b.cfg.Hooks.spilledBytes(int64(len(data)))
		b.cfg.Hooks.bufferDepth(-freed)
	}
}

// Window returns rows [startPosition, startPosition+count) — 1-based,
// GetTuples semantics — blocking while the requested window overlaps
// the still-producing tail. Once production is done the window clamps
// to the final row count exactly like the materialised path's
// rowset.Window. A production error is returned from every Window
// call: a partial result from a failed query is never served.
func (b *Buffer) Window(ctx context.Context, startPosition, count int) (*sqlengine.ResultSet, error) {
	if startPosition < 1 {
		startPosition = 1
	}
	if count <= 0 {
		return &sqlengine.ResultSet{Columns: b.cols}, nil
	}
	need := startPosition - 1 + count
	if err := b.await(ctx, func() bool {
		return b.released || b.err != nil || b.done || b.produced >= need
	}); err != nil {
		return nil, err
	}
	// b.mu held.
	if b.released {
		b.mu.Unlock()
		return nil, fmt.Errorf("rowset: buffer released")
	}
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return nil, err
	}
	from, to := windowRange(b.produced, startPosition, count)
	out := &sqlengine.ResultSet{Columns: b.cols}
	if from == to {
		b.mu.Unlock()
		return out, nil
	}
	// Snapshot the page descriptors covering [from, to); sealed page
	// row slices are immutable, so they can be read outside the lock,
	// and the open page only ever appends past the length captured
	// here. Spilled pages are re-read from the store below.
	refs := make([]bufPage, 0, (to-from)/b.cfg.PageRows+2)
	for _, p := range b.pages {
		if p.start+p.n <= from || p.start >= to {
			continue
		}
		refs = append(refs, bufPage{start: p.start, n: p.n, rows: p.rows, off: p.off, size: p.size})
	}
	if p := b.open; p != nil && p.start < to && p.start+p.n > from {
		refs = append(refs, bufPage{start: p.start, n: p.n, rows: p.rows[:p.n]})
	}
	store, spillName := b.cfg.Spill, b.cfg.SpillName
	b.mu.Unlock()

	out.Rows = make([][]sqlengine.Value, 0, to-from)
	for _, p := range refs {
		rows := p.rows
		if rows == nil {
			data, err := store.Read(spillName, p.off, p.size)
			if err != nil {
				return nil, fmt.Errorf("rowset: reading spilled page: %w", err)
			}
			rows, err = decodeSpillPage(data)
			if err != nil {
				return nil, fmt.Errorf("rowset: decoding spilled page: %w", err)
			}
			if len(rows) != p.n {
				return nil, fmt.Errorf("rowset: spilled page holds %d rows, expected %d", len(rows), p.n)
			}
		}
		lo, hi := from-p.start, to-p.start
		if lo < 0 {
			lo = 0
		}
		if hi > p.n {
			hi = p.n
		}
		out.Rows = append(out.Rows, rows[lo:hi]...)
	}
	if len(out.Rows) != to-from {
		return nil, fmt.Errorf("rowset: window [%d,%d) assembled %d rows", from, to, len(out.Rows))
	}
	return out, nil
}

// FinalCount blocks until production finishes and returns the total
// row count (or the production error).
func (b *Buffer) FinalCount(ctx context.Context) (int, error) {
	if err := b.await(ctx, func() bool { return b.done || b.released }); err != nil {
		return 0, err
	}
	n, err, released := b.produced, b.err, b.released
	b.mu.Unlock()
	if released && err == nil {
		return 0, fmt.Errorf("rowset: buffer released")
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// Materialise blocks until production finishes and returns the full
// result set (paging spilled rows back in). This is the bridge to
// consumers that still need the whole set at once.
func (b *Buffer) Materialise(ctx context.Context) (*sqlengine.ResultSet, error) {
	n, err := b.FinalCount(ctx)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return &sqlengine.ResultSet{Columns: b.cols}, nil
	}
	return b.Window(ctx, 1, n)
}

// Retain adds a reference; each Retain must be paired with a Release.
// Multiple service resources (a response resource and the rowset
// resources derived from it) share one buffer this way.
func (b *Buffer) Retain() {
	b.mu.Lock()
	b.refs++
	b.mu.Unlock()
}

// Release drops a reference. When the last one goes, the source is
// closed (cancelling a still-running engine stream), page memory is
// dropped, blocked readers fail, and the spill file is deleted.
func (b *Buffer) Release() {
	b.mu.Lock()
	b.refs--
	if b.refs > 0 || b.released {
		b.mu.Unlock()
		return
	}
	b.released = true
	depth := 0
	for _, p := range b.pages {
		if p.rows != nil {
			depth += p.n
		}
	}
	b.pages = nil
	b.open = nil
	b.resident = 0
	b.broadcastLocked()
	b.mu.Unlock()
	b.cfg.Hooks.bufferDepth(-depth)
	b.src.Close()
	if b.cfg.Spill != nil && b.cfg.SpillName != "" {
		if _, err := b.cfg.Spill.Stat(b.cfg.SpillName); err == nil {
			_ = b.cfg.Spill.Delete(b.cfg.SpillName)
		}
	}
}

// estimateRowBytes approximates a row's in-memory footprint for the
// MemCap accounting: the Value struct itself plus string payloads.
func estimateRowBytes(row []sqlengine.Value) int64 {
	n := int64(len(row)) * 80 // Value struct + slice slot, roughly
	for _, v := range row {
		n += int64(len(v.S))
	}
	return n
}
