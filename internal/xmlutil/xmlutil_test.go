package xmlutil

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	root, err := ParseString(`<a xmlns="urn:x"><b attr="1">hi</b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if root.Name.Space != "urn:x" || root.Name.Local != "a" {
		t.Fatalf("root name = %v", root.Name)
	}
	b := root.Find("urn:x", "b")
	if b == nil {
		t.Fatal("missing b")
	}
	if got := b.Text(); got != "hi" {
		t.Fatalf("b text = %q", got)
	}
	if v, ok := b.Attr("", "attr"); !ok || v != "1" {
		t.Fatalf("attr = %q %v", v, ok)
	}
	if root.Find("urn:x", "c") == nil {
		t.Fatal("missing c")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		"not xml",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("ParseString(%q): expected error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	docs := []string{
		`<a xmlns="urn:x"><b attr="1">hi</b><c/></a>`,
		`<root><child>text &amp; more</child><child>two</child></root>`,
		`<p:a xmlns:p="urn:p" xmlns:q="urn:q"><q:b p:x="v">t</q:b></p:a>`,
		`<a>mixed <b>inner</b> tail</a>`,
	}
	for _, d := range docs {
		e1, err := ParseString(d)
		if err != nil {
			t.Fatalf("parse %q: %v", d, err)
		}
		out := MarshalString(e1)
		e2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		if !Equal(e1, e2) {
			t.Errorf("round trip changed document:\n in: %s\nout: %s", d, out)
		}
	}
}

func TestTextEscaping(t *testing.T) {
	e := NewElement("", "a")
	e.SetText(`<>&"special`)
	out := MarshalString(e)
	got, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text() != `<>&"special` {
		t.Fatalf("text = %q", got.Text())
	}
}

func TestAttrEscaping(t *testing.T) {
	e := NewElement("", "a")
	e.SetAttr("", "v", `quote " amp & lt <`)
	got, err := ParseString(MarshalString(e))
	if err != nil {
		t.Fatal(err)
	}
	if v := got.AttrValue("", "v"); v != `quote " amp & lt <` {
		t.Fatalf("attr = %q", v)
	}
}

func TestFluentBuild(t *testing.T) {
	root := NewElement("urn:ns", "doc")
	root.Add("urn:ns", "item").SetText("one").SetAttr("", "k", "v")
	root.AddText("urn:ns", "item", "two")
	items := root.FindAll("urn:ns", "item")
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Text() != "one" || items[1].Text() != "two" {
		t.Fatal("wrong item text")
	}
	if items[0].Parent() != root {
		t.Fatal("parent not set")
	}
}

func TestPath(t *testing.T) {
	root, _ := ParseString(`<a xmlns="u"><b><c>deep</c></b></a>`)
	c := root.Path("u", "b", "c")
	if c == nil || c.Text() != "deep" {
		t.Fatalf("Path = %v", c)
	}
	if root.Path("u", "b", "missing") != nil {
		t.Fatal("expected nil for missing path")
	}
}

func TestClone(t *testing.T) {
	orig, _ := ParseString(`<a x="1"><b>t</b><c><d/></c></a>`)
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatal("clone not equal")
	}
	cp.Find("", "b").SetText("changed")
	if orig.Find("", "b").Text() != "t" {
		t.Fatal("clone shares state with original")
	}
	if cp.Parent() != nil {
		t.Fatal("clone parent should be nil")
	}
}

func TestRemoveChild(t *testing.T) {
	root, _ := ParseString(`<a><b/><c/></a>`)
	b := root.Find("", "b")
	if !root.RemoveChild(b) {
		t.Fatal("remove failed")
	}
	if root.Find("", "b") != nil {
		t.Fatal("b still present")
	}
	if root.RemoveChild(b) {
		t.Fatal("second remove should fail")
	}
}

func TestFindNamespaceFilter(t *testing.T) {
	root, _ := ParseString(`<a xmlns:p="urn:p"><p:x/><x/></a>`)
	if el := root.Find("urn:p", "x"); el == nil || el.Name.Space != "urn:p" {
		t.Fatal("namespaced find failed")
	}
	// empty space matches any namespace
	if els := root.FindAll("", "x"); len(els) != 2 {
		t.Fatalf("FindAll any-ns = %d", len(els))
	}
}

func TestWhitespaceTrimming(t *testing.T) {
	root, err := ParseString("<a>\n  <b>keep me</b>\n  <c> x </c>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2 (whitespace dropped)", len(root.Children))
	}
	if root.Find("", "c").Text() != " x " {
		t.Fatal("leaf text should not be trimmed")
	}
}

func TestMarshalIndent(t *testing.T) {
	root, _ := ParseString(`<a><b>t</b><c><d/></c></a>`)
	out := string(MarshalIndent(root))
	re, err := ParseString(out)
	if err != nil {
		t.Fatalf("indented output unparsable: %v\n%s", err, out)
	}
	if !Equal(root, re) {
		t.Fatalf("indent changed content:\n%s", out)
	}
	if !strings.Contains(out, "\n") {
		t.Fatal("expected newlines in indented output")
	}
}

func TestEqualDifferences(t *testing.T) {
	a, _ := ParseString(`<a x="1"><b/></a>`)
	cases := []string{
		`<a x="2"><b/></a>`,
		`<a x="1"><c/></a>`,
		`<a x="1"><b/><b/></a>`,
		`<a><b/></a>`,
		`<z x="1"><b/></a>`[:0] + `<z x="1"><b/></z>`,
	}
	for _, c := range cases {
		b, err := ParseString(c)
		if err != nil {
			t.Fatal(err)
		}
		if Equal(a, b) {
			t.Errorf("Equal(%s, %s) = true", MarshalString(a), c)
		}
	}
	if !Equal(nil, nil) {
		t.Fatal("Equal(nil, nil) should be true")
	}
	if Equal(a, nil) || Equal(nil, a) {
		t.Fatal("Equal with one nil should be false")
	}
}

// Property: any element built from printable text round-trips through
// Marshal/Parse unchanged.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// XML cannot represent most control characters; restrict to
		// the printable subset plus the characters we escape.
		clean := strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || (r >= 0x20 && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF)) {
				return r
			}
			return -1
		}, s)
		e := NewElement("urn:t", "doc")
		e.SetText(clean)
		got, err := ParseString(MarshalString(e))
		if err != nil {
			return false
		}
		// \r is normalised to \n by XML line-end handling; accept that.
		want := strings.ReplaceAll(clean, "\r\n", "\n")
		want = strings.ReplaceAll(want, "\r", "\n")
		return got.Text() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: attribute values round-trip.
func TestQuickAttrRoundTrip(t *testing.T) {
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r >= 0x20 && r != 0xFFFE && r != 0xFFFF && !(r >= 0xD800 && r <= 0xDFFF) {
				return r
			}
			return -1
		}, s)
		e := NewElement("", "doc")
		e.SetAttr("", "a", clean)
		got, err := ParseString(MarshalString(e))
		if err != nil {
			return false
		}
		return got.AttrValue("", "a") == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clone always compares Equal and is structurally independent.
func TestQuickCloneEqual(t *testing.T) {
	f := func(names []string, texts []string) bool {
		root := NewElement("urn:q", "root")
		cur := root
		for i, n := range names {
			if n == "" {
				n = "n"
			}
			n = sanitizeName(n)
			child := cur.Add("urn:q", n)
			if i < len(texts) {
				child.SetText(texts[i])
			}
			cur = child
		}
		return Equal(root, root.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "n"
	}
	return b.String()
}

func BenchmarkMarshal(b *testing.B) {
	root := NewElement("urn:b", "rows")
	for i := 0; i < 100; i++ {
		r := root.Add("urn:b", "row")
		r.AddText("urn:b", "id", "42")
		r.AddText("urn:b", "name", "benchmark row value")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(root)
	}
}

func BenchmarkParse(b *testing.B) {
	root := NewElement("urn:b", "rows")
	for i := 0; i < 100; i++ {
		r := root.Add("urn:b", "row")
		r.AddText("urn:b", "id", "42")
		r.AddText("urn:b", "name", "benchmark row value")
	}
	doc := MarshalString(root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}
