package xmlutil

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the XML parser. Two properties:
// the parser never panics, and any document it accepts survives a
// marshal → reparse round trip with the same root identity (the
// stability the SOAP layer relies on when it re-encodes decoded
// envelopes).
func FuzzParse(f *testing.F) {
	f.Add(`<a/>`)
	f.Add(`<ns:a xmlns:ns="urn:x" k="v"><b>text</b><!--c--></ns:a>`)
	f.Add(`<a xmlns="urn:d"><b xmlns=""><c/></b>tail</a>`)
	f.Add(`<?xml version="1.0" encoding="utf-8"?><a>&lt;&amp;&gt;</a>`)
	f.Add(`<a><![CDATA[<raw>]]></a>`)
	f.Add("<a>\xff\xfe</a>")
	f.Fuzz(func(t *testing.T, s string) {
		root, err := ParseString(s)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := MarshalString(root)
		again, err := ParseString(out)
		if err != nil {
			t.Fatalf("accepted document failed to reparse after marshal\ninput: %q\nmarshalled: %q\nerr: %v", s, out, err)
		}
		if again.Name != root.Name {
			t.Fatalf("root identity changed across round trip: %v → %v", root.Name, again.Name)
		}
		if strings.TrimSpace(again.Text()) != strings.TrimSpace(root.Text()) {
			t.Fatalf("text content changed across round trip: %q → %q", root.Text(), again.Text())
		}
	})
}
