package xmlutil

import (
	"errors"
	"fmt"
	"unicode/utf8"
)

// This file holds the byte-oriented document parser. It replaces the
// encoding/xml tokenizer on the SOAP hot path: the standard decoder
// allocates per token (names, copied character data, attribute slices),
// which dominated the allocation profile of a DAIS round trip. The
// parser below works on a single byte slice, interns qualified names so
// the repeated element vocabulary of a rowset costs one allocation per
// distinct name, and carves Element nodes out of chunked arenas.
//
// Behaviour matches the previous encoding/xml-based implementation (the
// differential test in parse_test.go pins this): namespace prefixes are
// resolved with document scoping, unknown prefixes are preserved as the
// Space verbatim, xmlns declarations are dropped, comments / PIs /
// doctypes are skipped, CDATA is honoured, the five predefined entities
// plus character references are expanded, and "\r\n"/"\r" normalise to
// "\n" in both character data and attribute values.

// parseArenaChunk is how many Elements are allocated at once while
// parsing. SOAP envelopes with rowset payloads run a few hundred
// elements; one or two chunks cover them.
const parseArenaChunk = 128

// nodeArenaChunk sizes the shared backing store for single-child
// Children slices (most elements hold exactly one text node).
const nodeArenaChunk = 128

type nsBinding struct {
	prefix string
	uri    string
}

type openTag struct {
	el     *Element
	nsMark int // len(p.ns) before this element's declarations
	raw    []byte
}

type rawAttr struct {
	prefix []byte
	local  []byte
	value  []byte
}

type byteParser struct {
	data  []byte
	pos   int
	names map[string]string // interned names, prefixes and URIs
	arena []Element
	nodes []Node
	ns    []nsBinding
	open  []openTag
	attrs []rawAttr
	buf   []byte // scratch for entity/newline decoding
}

// ParseBytes parses a complete XML document held in memory and returns
// its root element. It is the allocation-conscious core that Parse and
// ParseString delegate to; the returned tree never aliases data.
func ParseBytes(data []byte) (*Element, error) {
	p := &byteParser{data: data, names: make(map[string]string, 16)}
	root, err := p.run()
	if err != nil {
		return nil, fmt.Errorf("xmlutil: parse: %w", err)
	}
	return root, nil
}

func (p *byteParser) run() (*Element, error) {
	var root, cur *Element
	for {
		// Character data up to the next markup.
		start := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != '<' {
			p.pos++
		}
		if p.pos > start && cur != nil {
			text, err := p.decodeText(p.data[start:p.pos], false)
			if err != nil {
				return nil, err
			}
			p.appendChild(cur, Text(text))
		}
		if p.pos >= len(p.data) {
			break
		}
		p.pos++ // consume '<'
		if p.pos >= len(p.data) {
			return nil, errors.New("truncated markup")
		}
		switch p.data[p.pos] {
		case '?':
			if err := p.skipUntil("?>"); err != nil {
				return nil, err
			}
		case '!':
			if err := p.parseBang(cur); err != nil {
				return nil, err
			}
		case '/':
			p.pos++
			if cur == nil {
				return nil, errors.New("unbalanced end element")
			}
			name, err := p.readName()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != '>' {
				return nil, errors.New("malformed end tag")
			}
			p.pos++
			top := p.open[len(p.open)-1]
			if string(name) != string(top.raw) {
				return nil, fmt.Errorf("element <%s> closed by </%s>", top.raw, name)
			}
			trimWhitespaceBetweenElements(cur)
			p.ns = p.ns[:top.nsMark]
			p.open = p.open[:len(p.open)-1]
			cur = cur.parent
		default:
			el, selfClose, err := p.parseStartTag(cur)
			if err != nil {
				return nil, err
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("multiple root elements")
				}
				root = el
			}
			if !selfClose {
				cur = el
			}
		}
	}
	if root == nil {
		return nil, errors.New("empty document")
	}
	if cur != nil {
		return nil, errors.New("unexpected EOF inside element")
	}
	return root, nil
}

// parseBang dispatches "<!"-markup: comments, CDATA and doctype.
func (p *byteParser) parseBang(cur *Element) error {
	rest := p.data[p.pos:]
	switch {
	case len(rest) >= 3 && rest[1] == '-' && rest[2] == '-':
		p.pos += 3
		return p.skipUntil("-->")
	case len(rest) >= 8 && string(rest[:8]) == "![CDATA[":
		p.pos += 8
		end := indexFrom(p.data, p.pos, "]]>")
		if end < 0 {
			return errors.New("unterminated CDATA section")
		}
		if cur != nil {
			text, err := p.decodeText(p.data[p.pos:end], true)
			if err != nil {
				return err
			}
			p.appendChild(cur, Text(text))
		}
		p.pos = end + 3
		return nil
	default:
		// DOCTYPE or other directive: skip to the matching '>',
		// tracking nested angle brackets (internal subsets).
		depth := 0
		for ; p.pos < len(p.data); p.pos++ {
			switch p.data[p.pos] {
			case '<':
				depth++
			case '>':
				if depth == 0 {
					p.pos++
					return nil
				}
				depth--
			}
		}
		return errors.New("unterminated directive")
	}
}

// parseStartTag parses a start or empty-element tag, resolves its
// namespaces and attaches it to cur (or leaves it as a root candidate).
func (p *byteParser) parseStartTag(cur *Element) (el *Element, selfClose bool, err error) {
	raw, err := p.readName()
	if err != nil {
		return nil, false, err
	}
	nsMark := len(p.ns)
	p.attrs = p.attrs[:0]
	nattrs := 0
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return nil, false, errors.New("truncated start tag")
		}
		switch p.data[p.pos] {
		case '>':
			p.pos++
		case '/':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return nil, false, errors.New("malformed start tag")
			}
			p.pos += 2
			selfClose = true
		default:
			aname, err := p.readName()
			if err != nil {
				return nil, false, err
			}
			p.skipSpace()
			if p.pos >= len(p.data) || p.data[p.pos] != '=' {
				return nil, false, fmt.Errorf("attribute %s missing value", aname)
			}
			p.pos++
			p.skipSpace()
			val, err := p.readAttrValue()
			if err != nil {
				return nil, false, err
			}
			prefix, local := splitQName(aname)
			if string(prefix) == "xmlns" {
				uri, err := p.decodeText(val, false)
				if err != nil {
					return nil, false, err
				}
				p.ns = append(p.ns, nsBinding{prefix: p.intern(local), uri: uri})
				continue
			}
			if len(prefix) == 0 && string(local) == "xmlns" {
				uri, err := p.decodeText(val, false)
				if err != nil {
					return nil, false, err
				}
				p.ns = append(p.ns, nsBinding{prefix: "", uri: uri})
				continue
			}
			p.attrs = append(p.attrs, rawAttr{prefix: prefix, local: local, value: val})
			nattrs++
			continue
		}
		break
	}

	prefix, local := splitQName(raw)
	if !validLocalNameBytes(local) {
		return nil, false, fmt.Errorf("invalid element name %q", local)
	}
	el = p.newElement()
	el.Name = Name{Space: p.resolve(prefix, true), Local: p.intern(local)}
	if nattrs > 0 {
		el.Attrs = make([]Attr, 0, nattrs)
		for _, a := range p.attrs {
			if !validLocalNameBytes(a.local) {
				return nil, false, fmt.Errorf("invalid attribute name %q", a.local)
			}
			v, err := p.decodeText(a.value, false)
			if err != nil {
				return nil, false, err
			}
			el.Attrs = append(el.Attrs, Attr{
				Name:  Name{Space: p.resolve(a.prefix, false), Local: p.intern(a.local)},
				Value: v,
			})
		}
	}
	if cur != nil {
		el.parent = cur
		p.appendChild(cur, el)
	}
	if selfClose {
		p.ns = p.ns[:nsMark]
		return el, true, nil
	}
	p.open = append(p.open, openTag{el: el, nsMark: nsMark, raw: raw})
	return el, false, nil
}

// resolve maps a prefix to a namespace URI using the active bindings.
// Elements without a prefix take the default namespace; attributes do
// not. Undeclared prefixes are kept verbatim as the Space, matching
// encoding/xml.
func (p *byteParser) resolve(prefix []byte, isElement bool) string {
	if len(prefix) == 0 {
		if !isElement {
			return ""
		}
		for i := len(p.ns) - 1; i >= 0; i-- {
			if p.ns[i].prefix == "" {
				return p.ns[i].uri
			}
		}
		return ""
	}
	for i := len(p.ns) - 1; i >= 0; i-- {
		if p.ns[i].prefix == string(prefix) {
			return p.ns[i].uri
		}
	}
	if string(prefix) == "xml" { // predeclared by the XML spec
		return "http://www.w3.org/XML/1998/namespace"
	}
	return p.intern(prefix)
}

// newElement hands out a node from the arena, growing it in chunks so
// a document costs O(elements/chunk) allocations for its nodes.
func (p *byteParser) newElement() *Element {
	if len(p.arena) == cap(p.arena) {
		p.arena = make([]Element, 0, parseArenaChunk)
	}
	p.arena = p.arena[:len(p.arena)+1]
	return &p.arena[len(p.arena)-1]
}

// appendChild attaches a child node. The first child of an element
// lives in a shared arena slice capped at one entry, so the dominant
// single-text-leaf shape costs no slice allocation; a second child
// forces an ordinary append reallocation out of the arena.
func (p *byteParser) appendChild(el *Element, n Node) {
	if el.Children == nil {
		if len(p.nodes) == cap(p.nodes) {
			p.nodes = make([]Node, 0, nodeArenaChunk)
		}
		start := len(p.nodes)
		p.nodes = p.nodes[:start+1]
		p.nodes[start] = n
		el.Children = p.nodes[start : start+1 : start+1]
		return
	}
	el.Children = append(el.Children, n)
}

// intern returns a string for b, reusing a previous allocation when the
// same bytes were seen before (element vocabularies repeat heavily).
func (p *byteParser) intern(b []byte) string {
	if s, ok := p.names[string(b)]; ok { // compiler-optimised, no alloc
		return s
	}
	s := string(b)
	p.names[s] = s
	return s
}

// readName consumes a qualified name.
func (p *byteParser) readName() ([]byte, error) {
	start := p.pos
	for p.pos < len(p.data) && !isNameDelim(p.data[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, errors.New("expected name")
	}
	return p.data[start:p.pos], nil
}

func isNameDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '=', '>', '/', '<', '"', '\'':
		return true
	}
	return false
}

func splitQName(b []byte) (prefix, local []byte) {
	for i, c := range b {
		if c == ':' {
			return b[:i], b[i+1:]
		}
	}
	return nil, b
}

// readAttrValue consumes a quoted attribute value, returning the raw
// bytes between the quotes (entities still encoded).
func (p *byteParser) readAttrValue() ([]byte, error) {
	if p.pos >= len(p.data) {
		return nil, errors.New("truncated attribute value")
	}
	quote := p.data[p.pos]
	if quote != '"' && quote != '\'' {
		return nil, errors.New("unquoted attribute value")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.data) && p.data[p.pos] != quote {
		if p.data[p.pos] == '<' {
			return nil, errors.New("'<' in attribute value")
		}
		p.pos++
	}
	if p.pos >= len(p.data) {
		return nil, errors.New("unterminated attribute value")
	}
	val := p.data[start:p.pos]
	p.pos++
	return val, nil
}

func (p *byteParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *byteParser) skipUntil(marker string) error {
	end := indexFrom(p.data, p.pos, marker)
	if end < 0 {
		return fmt.Errorf("unterminated %q markup", marker)
	}
	p.pos = end + len(marker)
	return nil
}

func indexFrom(data []byte, from int, sep string) int {
	for i := from; i+len(sep) <= len(data); i++ {
		if string(data[i:i+len(sep)]) == sep {
			return i
		}
	}
	return -1
}

// decodeText turns raw character data into a string: entity references
// expand (unless cdata), and "\r\n"/"\r" normalise to "\n". The common
// clean case costs exactly the one string allocation.
func (p *byteParser) decodeText(raw []byte, cdata bool) (string, error) {
	dirty := -1
	for i, c := range raw {
		if c == '\r' || (!cdata && c == '&') {
			dirty = i
			break
		}
	}
	if dirty < 0 {
		return string(raw), nil
	}
	buf := append(p.buf[:0], raw[:dirty]...)
	for i := dirty; i < len(raw); {
		switch c := raw[i]; {
		case c == '\r':
			buf = append(buf, '\n')
			i++
			if i < len(raw) && raw[i] == '\n' {
				i++
			}
		case c == '&' && !cdata:
			r, width, err := decodeEntity(raw[i:])
			if err != nil {
				return "", err
			}
			buf = utf8.AppendRune(buf, r)
			i += width
		default:
			buf = append(buf, c)
			i++
		}
	}
	p.buf = buf
	return string(buf), nil
}

// decodeEntity expands one entity or character reference starting at
// b[0] == '&', returning the rune and the encoded width.
func decodeEntity(b []byte) (rune, int, error) {
	end := -1
	for i := 1; i < len(b) && i < 36; i++ {
		if b[i] == ';' {
			end = i
			break
		}
	}
	if end < 0 {
		return 0, 0, errors.New("invalid character entity")
	}
	name := b[1:end]
	if len(name) > 1 && name[0] == '#' {
		var n rune
		digits := name[1:]
		base := rune(10)
		if len(digits) > 1 && (digits[0] == 'x' || digits[0] == 'X') {
			base, digits = 16, digits[1:]
		}
		if len(digits) == 0 {
			return 0, 0, errors.New("invalid character entity")
		}
		for _, d := range digits {
			var v rune
			switch {
			case '0' <= d && d <= '9':
				v = rune(d - '0')
			case base == 16 && 'a' <= d && d <= 'f':
				v = rune(d-'a') + 10
			case base == 16 && 'A' <= d && d <= 'F':
				v = rune(d-'A') + 10
			default:
				return 0, 0, errors.New("invalid character entity")
			}
			n = n*base + v
			if n > utf8.MaxRune {
				return 0, 0, errors.New("invalid character entity")
			}
		}
		if !inCharacterRange(n) {
			return 0, 0, errors.New("invalid character entity")
		}
		return n, end + 1, nil
	}
	switch string(name) {
	case "lt":
		return '<', end + 1, nil
	case "gt":
		return '>', end + 1, nil
	case "amp":
		return '&', end + 1, nil
	case "apos":
		return '\'', end + 1, nil
	case "quot":
		return '"', end + 1, nil
	}
	return 0, 0, fmt.Errorf("unknown entity &%s;", name)
}

// inCharacterRange mirrors the XML 1.0 Char production.
func inCharacterRange(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// validLocalNameBytes is validLocalName over raw bytes without an
// intermediate string.
func validLocalNameBytes(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	first := true
	for i := 0; i < len(b); {
		r, size := utf8.DecodeRune(b[i:])
		if r == utf8.RuneError && size == 1 {
			return false
		}
		if first {
			if !isNameStart(r) {
				return false
			}
			first = false
		} else if !isNameChar(r) {
			return false
		}
		i += size
	}
	return true
}
