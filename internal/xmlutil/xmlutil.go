// Package xmlutil provides a small namespace-aware XML element tree.
//
// The Go standard library's encoding/xml package offers struct-based
// marshalling and a streaming tokenizer, but no document object model.
// SOAP processing, WSRF property documents and the WS-DAIX document
// store all need to hold, inspect and re-serialise arbitrary XML whose
// shape is not known at compile time, so this package builds a minimal
// infoset on top of the encoding/xml tokenizer: elements with qualified
// names, attributes, character data and child elements.
package xmlutil

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Name is a qualified XML name: a namespace URI plus a local part.
type Name struct {
	Space string // namespace URI, "" for no namespace
	Local string // local name
}

// String renders the name in Clark notation ({uri}local) for debugging.
func (n Name) String() string {
	if n.Space == "" {
		return n.Local
	}
	return "{" + n.Space + "}" + n.Local
}

// Attr is a single attribute. Namespace declarations are not stored as
// attributes; prefixes are re-synthesised at serialisation time.
type Attr struct {
	Name  Name
	Value string
}

// Element is a node in the tree. Children preserves document order and
// may interleave *Element and Text nodes.
type Element struct {
	Name     Name
	Attrs    []Attr
	Children []Node
	parent   *Element
}

// Node is implemented by the child node kinds: *Element, Text and Raw.
type Node interface{ isNode() }

// Text is a character-data child node.
type Text string

// Raw is a pre-serialised XML fragment written verbatim by Marshal.
// It lets a producer embed bytes it already rendered (a rowset payload,
// say) without re-parsing them into a tree. The fragment must be a
// well-formed standalone element with its own namespace declarations —
// exactly what Marshal emits — so the surrounding document stays valid.
// Raw nodes never result from parsing; Parse materialises real elements.
type Raw string

func (Text) isNode()     {}
func (Raw) isNode()      {}
func (*Element) isNode() {}

// NewElement returns an element with the given namespace and local name.
func NewElement(space, local string) *Element {
	return &Element{Name: Name{Space: space, Local: local}}
}

// Parent returns the element's parent, or nil for a root element.
func (e *Element) Parent() *Element { return e.parent }

// AppendChild adds a child element and sets its parent pointer.
func (e *Element) AppendChild(c *Element) *Element {
	c.parent = e
	e.Children = append(e.Children, c)
	return c
}

// InsertChildAt inserts a child element at the given position among
// Children (clamped to the valid range) and sets its parent pointer.
func (e *Element) InsertChildAt(i int, c *Element) {
	if i < 0 {
		i = 0
	}
	if i > len(e.Children) {
		i = len(e.Children)
	}
	c.parent = e
	e.Children = append(e.Children, nil)
	copy(e.Children[i+1:], e.Children[i:])
	e.Children[i] = c
}

// Add creates a child element with the given name, appends it and
// returns it, enabling fluent document construction.
func (e *Element) Add(space, local string) *Element {
	return e.AppendChild(NewElement(space, local))
}

// AddText creates a child element containing only the given text.
func (e *Element) AddText(space, local, text string) *Element {
	c := e.Add(space, local)
	c.SetText(text)
	return c
}

// SetText replaces the element's children with a single text node.
func (e *Element) SetText(s string) *Element {
	e.Children = []Node{Text(s)}
	return e
}

// SetAttr sets (or replaces) an attribute value.
func (e *Element) SetAttr(space, local, value string) *Element {
	for i := range e.Attrs {
		if e.Attrs[i].Name.Space == space && e.Attrs[i].Name.Local == local {
			e.Attrs[i].Value = value
			return e
		}
	}
	e.Attrs = append(e.Attrs, Attr{Name: Name{Space: space, Local: local}, Value: value})
	return e
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Element) Attr(space, local string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Name.Space == space && a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// AttrValue returns the attribute value or "" if absent.
func (e *Element) AttrValue(space, local string) string {
	v, _ := e.Attr(space, local)
	return v
}

// Text returns the concatenation of all descendant character data, in
// document order (the XPath string-value of the element).
func (e *Element) Text() string {
	// The overwhelmingly common shape — one text child — costs nothing.
	if len(e.Children) == 1 {
		if t, ok := e.Children[0].(Text); ok {
			return string(t)
		}
	}
	var b strings.Builder
	e.writeText(&b)
	return b.String()
}

func (e *Element) writeText(b *strings.Builder) {
	for _, c := range e.Children {
		switch n := c.(type) {
		case Text:
			b.WriteString(string(n))
		case *Element:
			n.writeText(b)
		}
	}
}

// ChildElements returns the element children in document order.
func (e *Element) ChildElements() []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok {
			out = append(out, el)
		}
	}
	return out
}

// Find returns the first child element with the given name, or nil.
func (e *Element) Find(space, local string) *Element {
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name.Local == local &&
			(space == "" || el.Name.Space == space) {
			return el
		}
	}
	return nil
}

// FindAll returns every child element with the given name.
func (e *Element) FindAll(space, local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if el, ok := c.(*Element); ok && el.Name.Local == local &&
			(space == "" || el.Name.Space == space) {
			out = append(out, el)
		}
	}
	return out
}

// FindText returns the string-value of the first matching child, or "".
func (e *Element) FindText(space, local string) string {
	if c := e.Find(space, local); c != nil {
		return c.Text()
	}
	return ""
}

// Path walks a chain of child names ({space,local} pairs are given as a
// single namespace applied to each step) and returns the terminal
// element, or nil if any step is missing.
func (e *Element) Path(space string, locals ...string) *Element {
	cur := e
	for _, l := range locals {
		cur = cur.Find(space, l)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// RemoveChild removes the first occurrence of the given child element.
func (e *Element) RemoveChild(c *Element) bool {
	for i, n := range e.Children {
		if n == Node(c) {
			e.Children = append(e.Children[:i], e.Children[i+1:]...)
			c.parent = nil
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the element with a nil parent.
func (e *Element) Clone() *Element {
	cp := &Element{Name: e.Name}
	cp.Attrs = append([]Attr(nil), e.Attrs...)
	for _, c := range e.Children {
		switch n := c.(type) {
		case Text, Raw:
			cp.Children = append(cp.Children, n)
		case *Element:
			child := n.Clone()
			child.parent = cp
			cp.Children = append(cp.Children, child)
		}
	}
	return cp
}

// Parse reads a complete XML document from r and returns its root
// element. Comments and processing instructions are discarded;
// character data consisting solely of whitespace between elements is
// kept only inside elements that contain no child elements, matching
// the data-oriented documents DAIS deals in.
func Parse(r io.Reader) (*Element, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmlutil: parse: %w", err)
	}
	return ParseBytes(data)
}

// ParseString is Parse over a string.
func ParseString(s string) (*Element, error) {
	return ParseBytes([]byte(s))
}

// validLocalName reports whether s is a well-formed XML name with no
// colon — the shape a local part must have to be written standalone by
// the encoder. The character classes follow the XML 1.0 Name
// production (ASCII plus the common Unicode letter ranges; stricter
// than encoding/xml's qualified-name check on purpose).
func validLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if !isNameStart(r) {
				return false
			}
			continue
		}
		if !isNameChar(r) {
			return false
		}
	}
	return true
}

func isNameStart(r rune) bool {
	switch {
	case r == '_',
		'A' <= r && r <= 'Z', 'a' <= r && r <= 'z',
		0xC0 <= r && r <= 0xD6, 0xD8 <= r && r <= 0xF6, 0xF8 <= r && r <= 0x2FF,
		0x370 <= r && r <= 0x37D, 0x37F <= r && r <= 0x1FFF,
		0x200C <= r && r <= 0x200D, 0x2070 <= r && r <= 0x218F,
		0x2C00 <= r && r <= 0x2FEF, 0x3001 <= r && r <= 0xD7FF,
		0xF900 <= r && r <= 0xFDCF, 0xFDF0 <= r && r <= 0xFFFD,
		0x10000 <= r && r <= 0xEFFFF:
		return true
	}
	return false
}

func isNameChar(r rune) bool {
	switch {
	case isNameStart(r),
		r == '-', r == '.', '0' <= r && r <= '9',
		r == 0xB7, 0x300 <= r && r <= 0x36F, 0x203F <= r && r <= 0x2040:
		return true
	}
	return false
}

// trimWhitespaceBetweenElements drops whitespace-only text nodes from
// elements that have at least one element child (formatting noise).
func trimWhitespaceBetweenElements(e *Element) {
	hasElem := false
	for _, c := range e.Children {
		if _, ok := c.(*Element); ok {
			hasElem = true
			break
		}
	}
	if !hasElem {
		return
	}
	out := e.Children[:0]
	for _, c := range e.Children {
		if t, ok := c.(Text); ok && strings.TrimSpace(string(t)) == "" {
			continue
		}
		out = append(out, c)
	}
	e.Children = out
}

// namespace prefix assignment for serialisation.
type nsContext struct {
	prefixes map[string]string // uri -> prefix
	next     int
}

func (c *nsContext) prefix(uri string) string {
	if uri == "" {
		return ""
	}
	if p, ok := c.prefixes[uri]; ok {
		return p
	}
	p := fmt.Sprintf("ns%d", c.next)
	c.next++
	c.prefixes[uri] = p
	return p
}

// encWriter is the streaming serialisation target: bytes.Buffer,
// strings.Builder and bufio.Writer all satisfy it without an adapter
// allocation. Write errors surface on the underlying writer (buffer
// writers never fail; bufio defers to Flush).
type encWriter interface {
	io.Writer
	WriteString(string) (int, error)
	WriteByte(byte) error
}

// Marshal serialises the element as a standalone XML fragment. Every
// namespace in the subtree is declared on the root element with a
// generated prefix, which keeps the output deterministic and avoids
// re-declaration churn in deep trees.
func Marshal(e *Element) []byte {
	var b bytes.Buffer
	encodeTree(&b, e)
	return b.Bytes()
}

// EncodeTo streams the element into w, producing exactly the bytes
// Marshal returns but without materialising an intermediate copy. When
// w already satisfies the buffer-writer methods (bytes.Buffer,
// strings.Builder, bufio.Writer) it is written to directly; otherwise
// the output is staged through a bufio.Writer.
func EncodeTo(w io.Writer, e *Element) error {
	if ew, ok := w.(encWriter); ok {
		encodeTree(ew, e)
		return nil
	}
	bw := bufio.NewWriter(w)
	encodeTree(bw, e)
	return bw.Flush()
}

// encodeTree assigns namespace prefixes and streams the subtree.
func encodeTree(b encWriter, e *Element) {
	ctx := &nsContext{prefixes: map[string]string{}}
	collectNamespaces(e, ctx)
	writeElement(b, e, ctx, true)
}

// MarshalString is Marshal returning a string.
func MarshalString(e *Element) string {
	var b strings.Builder
	encodeTree(&b, e)
	return b.String()
}

// MarshalIndent serialises with two-space indentation for human output.
func MarshalIndent(e *Element) []byte {
	raw := Marshal(e)
	parsed, err := Parse(bytes.NewReader(raw))
	if err != nil {
		return raw
	}
	var b bytes.Buffer
	ctx := &nsContext{prefixes: map[string]string{}}
	collectNamespaces(parsed, ctx)
	writeIndented(&b, parsed, ctx, true, 0)
	return b.Bytes()
}

func collectNamespaces(e *Element, ctx *nsContext) {
	// Deterministic ordering: gather URIs then sort before assignment.
	uris := map[string]bool{}
	var walk func(*Element)
	walk = func(el *Element) {
		if el.Name.Space != "" {
			uris[el.Name.Space] = true
		}
		for _, a := range el.Attrs {
			if a.Name.Space != "" {
				uris[a.Name.Space] = true
			}
		}
		for _, c := range el.Children {
			if ch, ok := c.(*Element); ok {
				walk(ch)
			}
		}
	}
	walk(e)
	sorted := make([]string, 0, len(uris))
	for u := range uris {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	for _, u := range sorted {
		ctx.prefix(u)
	}
}

func writeOpenTag(b encWriter, e *Element, ctx *nsContext, root bool) {
	b.WriteByte('<')
	writeQName(b, e.Name, ctx)
	if root {
		// Declare all namespaces on the root.
		uris := make([]string, 0, len(ctx.prefixes))
		for u := range ctx.prefixes {
			uris = append(uris, u)
		}
		sort.Strings(uris)
		for _, u := range uris {
			b.WriteString(` xmlns:`)
			b.WriteString(ctx.prefixes[u])
			b.WriteString(`="`)
			writeEscaped(b, u, true)
			b.WriteByte('"')
		}
	}
	for _, a := range e.Attrs {
		b.WriteByte(' ')
		writeQName(b, a.Name, ctx)
		b.WriteString(`="`)
		writeEscaped(b, a.Value, true)
		b.WriteByte('"')
	}
}

func writeElement(b encWriter, e *Element, ctx *nsContext, root bool) {
	writeOpenTag(b, e, ctx, root)
	if len(e.Children) == 0 {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	for _, c := range e.Children {
		switch n := c.(type) {
		case Text:
			writeEscaped(b, string(n), false)
		case Raw:
			b.WriteString(string(n))
		case *Element:
			writeElement(b, n, ctx, false)
		}
	}
	b.WriteString("</")
	writeQName(b, e.Name, ctx)
	b.WriteByte('>')
}

func writeIndented(b encWriter, e *Element, ctx *nsContext, root bool, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	writeOpenTag(b, e, ctx, root)
	if len(e.Children) == 0 {
		b.WriteString("/>\n")
		return
	}
	elems := e.ChildElements()
	if len(elems) == 0 {
		b.WriteByte('>')
		writeEscaped(b, e.Text(), false)
		b.WriteString("</")
		writeQName(b, e.Name, ctx)
		b.WriteString(">\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range elems {
		writeIndented(b, c, ctx, false, depth+1)
	}
	b.WriteString(indent)
	b.WriteString("</")
	writeQName(b, e.Name, ctx)
	b.WriteString(">\n")
}

func writeQName(b encWriter, n Name, ctx *nsContext) {
	if n.Space != "" {
		b.WriteString(ctx.prefixes[n.Space])
		b.WriteByte(':')
	}
	b.WriteString(n.Local)
}

// EscapeTo writes s into b with exactly Marshal's text-escaping rules
// (attr additionally escapes the double quote), for encoders that emit
// fragments byte-identical to a Marshal of the equivalent tree.
func EscapeTo(b *bytes.Buffer, s string, attr bool) { writeEscaped(b, s, attr) }

// writeEscaped streams s with XML escaping, writing unescaped spans in
// single WriteString calls so clean text (the overwhelmingly common
// case for DAIS payloads) costs zero allocations. Attribute values
// additionally escape the double quote used as the delimiter.
func writeEscaped(b encWriter, s string, attr bool) {
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '"':
			if !attr {
				continue
			}
			esc = "&quot;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
}

// Equal reports deep equality of two elements: same name, attributes
// (order-insensitive), and children (order-sensitive, whitespace-only
// text ignored around element children).
func Equal(a, b *Element) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for _, attr := range a.Attrs {
		v, ok := b.Attr(attr.Name.Space, attr.Name.Local)
		if !ok || v != attr.Value {
			return false
		}
	}
	ac, bc := normalChildren(a), normalChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		switch an := ac[i].(type) {
		case Text:
			bn, ok := bc[i].(Text)
			if !ok || an != bn {
				return false
			}
		case Raw:
			bn, ok := bc[i].(Raw)
			if !ok || an != bn {
				return false
			}
		case *Element:
			bn, ok := bc[i].(*Element)
			if !ok || !Equal(an, bn) {
				return false
			}
		}
	}
	return true
}

func normalChildren(e *Element) []Node {
	hasElem := false
	for _, c := range e.Children {
		if _, ok := c.(*Element); ok {
			hasElem = true
		}
	}
	var out []Node
	for _, c := range e.Children {
		if t, ok := c.(Text); ok {
			if hasElem && strings.TrimSpace(string(t)) == "" {
				continue
			}
			// merge adjacent text
			if len(out) > 0 {
				if prev, ok := out[len(out)-1].(Text); ok {
					out[len(out)-1] = prev + t
					continue
				}
			}
		}
		out = append(out, c)
	}
	return out
}
