package xmlutil

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// parseReference is the previous encoding/xml-based implementation of
// Parse, kept here as the behavioural oracle for the byte parser.
func parseReference(r io.Reader) (*Element, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var cur *Element
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlutil: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if !validLocalName(t.Name.Local) {
				return nil, fmt.Errorf("xmlutil: parse: invalid element name %q", t.Name.Local)
			}
			el := NewElement(t.Name.Space, t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				if !validLocalName(a.Name.Local) {
					return nil, fmt.Errorf("xmlutil: parse: invalid attribute name %q", a.Name.Local)
				}
				el.Attrs = append(el.Attrs, Attr{
					Name:  Name{Space: a.Name.Space, Local: a.Name.Local},
					Value: a.Value,
				})
			}
			if cur == nil {
				if root != nil {
					return nil, errors.New("xmlutil: multiple root elements")
				}
				root = el
			} else {
				cur.AppendChild(el)
			}
			cur = el
		case xml.EndElement:
			if cur == nil {
				return nil, errors.New("xmlutil: unbalanced end element")
			}
			trimWhitespaceBetweenElements(cur)
			cur = cur.parent
		case xml.CharData:
			if cur != nil {
				cur.Children = append(cur.Children, Text(string(t)))
			}
		}
	}
	if root == nil {
		return nil, errors.New("xmlutil: empty document")
	}
	if cur != nil {
		return nil, errors.New("xmlutil: unexpected EOF inside element")
	}
	return root, nil
}

// TestParseMatchesReference pins the byte parser to the encoding/xml
// semantics it replaced: same trees on valid documents, rejection on
// the same invalid ones.
func TestParseMatchesReference(t *testing.T) {
	docs := []string{
		// plain structure
		`<a><b>hi</b><c/></a>`,
		`<a xmlns="urn:x"><b attr="1">hi</b><c/></a>`,
		// prefixes, scoping, shadowing, attribute namespaces
		`<p:a xmlns:p="urn:p" xmlns:q="urn:q"><q:b p:x="v">t</q:b></p:a>`,
		`<a xmlns="u1"><b xmlns="u2"><c/></b><d/></a>`,
		`<a xmlns:p="u1"><p:b xmlns:p="u2"><p:c/></p:b><p:d/></a>`,
		// undeclared prefix preserved verbatim
		`<x:a><x:b y:attr="v"/></x:a>`,
		// xml: prefix and single quotes
		`<a xml:lang="en" b='single'/>`,
		// entities and character references
		`<a>one &amp; two &lt;three&gt; &#65;&#x42; &apos;&quot;</a>`,
		`<a v="x&amp;y&#10;z"/>`,
		// CDATA
		`<a><![CDATA[raw <not> &amp; markup]]></a>`,
		`<a>pre<![CDATA[mid]]>post</a>`,
		// newline normalisation in text and attributes
		"<a>one\r\ntwo\rthree</a>",
		"<a v=\"one\r\ntwo\rthree\"/>",
		// whitespace trimming between elements
		"<a>\n  <b>keep me</b>\n  <c> x </c>\n</a>",
		// mixed content
		`<a>mixed <b>inner</b> tail</a>`,
		// comments, PIs, doctype, XML declaration
		`<?xml version="1.0" encoding="UTF-8"?><a><!-- note --><b/></a>`,
		`<!DOCTYPE a><a><?pi target?>t</a>`,
		// deep SOAP-ish document
		`<soap:Envelope xmlns:soap="http://www.w3.org/2003/05/soap-envelope">` +
			`<soap:Header><m:id xmlns:m="urn:m">7</m:id></soap:Header>` +
			`<soap:Body><m:op xmlns:m="urn:m"><m:row a="1">v1</m:row><m:row a="2">v2</m:row></m:op></soap:Body>` +
			`</soap:Envelope>`,
		// empty attribute value, unicode text
		`<a v="">héllo — 世界</a>`,
		// self-closing root with namespace on itself
		`<a xmlns="only:me"/>`,
	}
	for _, d := range docs {
		got, gotErr := ParseBytes([]byte(d))
		want, wantErr := parseReference(strings.NewReader(d))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("parse %q: err = %v, reference err = %v", d, gotErr, wantErr)
			continue
		}
		if gotErr != nil {
			continue
		}
		if !Equal(got, want) {
			t.Errorf("parse %q:\n got %s\nwant %s", d, MarshalString(got), MarshalString(want))
		}
		// Exact infoset check beyond Equal's normalisation: the
		// re-serialisations must agree byte for byte.
		if g, w := MarshalString(got), MarshalString(want); g != w {
			t.Errorf("marshal mismatch for %q:\n got %s\nwant %s", d, g, w)
		}
	}
}

// TestParseRejects lists documents both parsers must refuse.
func TestParseRejects(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"not xml",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		"<a attr></a>",
		`<a attr=novalue/>`,
		`<a v="unterminated></a>`,
		"<a>&unknown;</a>",
		"<a>&#xZZ;</a>",
		"<a>&#0;</a>",
		"<a><b></a></b>",
		"<a",
		"</a>",
		`<a v="<"/>`,
		"<a><![CDATA[unterminated</a>",
		"<!-- only a comment -->",
	}
	for _, d := range bad {
		if _, err := ParseBytes([]byte(d)); err == nil {
			t.Errorf("ParseBytes(%q): expected error", d)
		}
		if _, err := parseReference(strings.NewReader(d)); err == nil {
			t.Errorf("reference accepts %q — oracle drifted", d)
		}
	}
}

// TestParseInvalidNames mirrors the old name validation: local parts
// must be standalone XML names so re-marshalling stays parseable.
func TestParseInvalidNames(t *testing.T) {
	for _, d := range []string{`<x:0 xmlns:x="u"/>`, `<a x:0="v" xmlns:x="u"/>`} {
		if _, err := ParseBytes([]byte(d)); err == nil {
			t.Errorf("ParseBytes(%q): expected invalid-name error", d)
		}
	}
}

// TestRawNode exercises the verbatim-fragment child kind.
func TestRawNode(t *testing.T) {
	inner := NewElement("urn:in", "rows")
	inner.AddText("urn:in", "row", "a & b")
	fragment := Marshal(inner)

	wrap := NewElement("urn:out", "Dataset")
	wrap.SetAttr("", "formatURI", "urn:fmt")
	wrap.Children = append(wrap.Children, Raw(fragment))

	reparsed, err := ParseBytes(Marshal(wrap))
	if err != nil {
		t.Fatalf("marshal with Raw produced unparseable bytes: %v", err)
	}
	rows := reparsed.Find("urn:in", "rows")
	if rows == nil {
		t.Fatalf("embedded fragment lost: %s", Marshal(wrap))
	}
	if got := rows.FindText("urn:in", "row"); got != "a & b" {
		t.Fatalf("embedded text = %q", got)
	}
	// Clone and Equal treat Raw as opaque bytes.
	if !Equal(wrap, wrap.Clone()) {
		t.Fatal("clone with Raw not Equal")
	}
}

func BenchmarkParseBytes(b *testing.B) {
	root := NewElement("urn:b", "rows")
	for i := 0; i < 100; i++ {
		r := root.Add("urn:b", "row")
		r.AddText("urn:b", "id", "42")
		r.AddText("urn:b", "name", "benchmark row value")
	}
	doc := Marshal(root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseBytes(doc); err != nil {
			b.Fatal(err)
		}
	}
}
