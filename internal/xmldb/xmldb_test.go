package xmldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"dais/internal/xmlutil"
)

func seedStore(t testing.TB) *Store {
	t.Helper()
	s := NewStore("library")
	for i, doc := range []string{
		`<book id="1"><title>Alpha</title><price>10</price></book>`,
		`<book id="2"><title>Beta</title><price>30</price></book>`,
		`<book id="3"><title>Gamma</title><price>20</price></book>`,
	} {
		e, err := xmlutil.ParseString(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddDocument("", fmt.Sprintf("book%d.xml", i+1), e); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestDocumentCRUD(t *testing.T) {
	s := seedStore(t)
	names, err := s.ListDocuments("")
	if err != nil || len(names) != 3 {
		t.Fatalf("list = %v, %v", names, err)
	}
	doc, err := s.GetDocument("", "book2.xml")
	if err != nil {
		t.Fatal(err)
	}
	if doc.FindText("", "title") != "Beta" {
		t.Fatalf("doc = %s", xmlutil.MarshalString(doc))
	}
	// GetDocument returns a copy: mutating it must not affect the store.
	doc.Find("", "title").SetText("Mutated")
	again, _ := s.GetDocument("", "book2.xml")
	if again.FindText("", "title") != "Beta" {
		t.Fatal("store shares state with returned document")
	}
	if err := s.RemoveDocument("", "book2.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetDocument("", "book2.xml"); err == nil {
		t.Fatal("removed document still readable")
	}
	if err := s.RemoveDocument("", "book2.xml"); err == nil {
		t.Fatal("double remove should fail")
	}
	if n, _ := s.DocumentCount(""); n != 2 {
		t.Fatalf("count = %d", n)
	}
}

func TestAddDocumentErrors(t *testing.T) {
	s := seedStore(t)
	e, _ := xmlutil.ParseString(`<x/>`)
	if err := s.AddDocument("", "book1.xml", e); err == nil {
		t.Fatal("duplicate name should fail")
	}
	if err := s.AddDocument("", "", e); err == nil {
		t.Fatal("empty name should fail")
	}
	if err := s.AddDocument("", "ok.xml", nil); err == nil {
		t.Fatal("nil doc should fail")
	}
	if err := s.AddDocument("missing", "ok.xml", e); err == nil {
		t.Fatal("missing collection should fail")
	}
	// PutDocument replaces silently.
	if err := s.PutDocument("", "book1.xml", e); err != nil {
		t.Fatal(err)
	}
	got, _ := s.GetDocument("", "book1.xml")
	if got.Name.Local != "x" {
		t.Fatal("put did not replace")
	}
}

func TestSubCollections(t *testing.T) {
	s := NewStore("root")
	if err := s.CreateCollection("science"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateCollection("science/physics"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateCollection("science"); err == nil {
		t.Fatal("duplicate collection")
	}
	if err := s.CreateCollection("arts/painting"); err == nil {
		t.Fatal("missing parent should fail")
	}
	subs, err := s.ListCollections("science")
	if err != nil || len(subs) != 1 || subs[0] != "physics" {
		t.Fatalf("subs = %v, %v", subs, err)
	}
	e, _ := xmlutil.ParseString(`<paper/>`)
	if err := s.AddDocument("science/physics", "p1.xml", e); err != nil {
		t.Fatal(err)
	}
	names, _ := s.ListDocuments("science/physics")
	if len(names) != 1 {
		t.Fatalf("names = %v", names)
	}
	// Documents in sub-collections are invisible to the parent.
	rootNames, _ := s.ListDocuments("science")
	if len(rootNames) != 0 {
		t.Fatalf("parent sees child docs: %v", rootNames)
	}
	if err := s.RemoveCollection("science"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListDocuments("science/physics"); err == nil {
		t.Fatal("removed subtree still resolvable")
	}
}

func TestXPathQueryAcrossDocuments(t *testing.T) {
	s := seedStore(t)
	res, err := s.XPathQuery("", "/book[price > 15]/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	// Sorted by document name: book2 then book3.
	if res[0].Node.Text() != "Beta" || res[1].Node.Text() != "Gamma" {
		t.Fatalf("res = %v %v", res[0].Node.Text(), res[1].Node.Text())
	}
	if res[0].Document != "book2.xml" {
		t.Fatalf("doc = %s", res[0].Document)
	}
}

func TestXPathQueryScalar(t *testing.T) {
	s := seedStore(t)
	res, err := s.XPathQuery("", "count(/book/price)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("res = %+v", res)
	}
	for _, r := range res {
		if r.IsNode || r.Value != "1" {
			t.Fatalf("r = %+v", r)
		}
	}
}

func TestXPathQueryDocument(t *testing.T) {
	s := seedStore(t)
	res, err := s.XPathQueryDocument("", "book1.xml", "/book/@id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node.Text() != "1" {
		t.Fatalf("res = %+v", res)
	}
	if _, err := s.XPathQueryDocument("", "missing.xml", "/book"); err == nil {
		t.Fatal("missing doc")
	}
	if _, err := s.XPathQuery("", "bad["); err == nil {
		t.Fatal("bad xpath")
	}
}

func TestXUpdateOperations(t *testing.T) {
	s := seedStore(t)
	mods := buildMods(t, `
		<xu:append select="/book">
			<xu:element name="publisher">Springer</xu:element>
		</xu:append>
		<xu:update select="/book/price">99</xu:update>
		<xu:rename select="/book/title">name</xu:rename>`)
	n, err := s.XUpdate("", "book1.xml", mods)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("affected = %d", n)
	}
	doc, _ := s.GetDocument("", "book1.xml")
	if doc.FindText("", "publisher") != "Springer" {
		t.Fatalf("append failed: %s", xmlutil.MarshalString(doc))
	}
	if doc.FindText("", "price") != "99" {
		t.Fatal("update failed")
	}
	if doc.Find("", "name") == nil || doc.Find("", "title") != nil {
		t.Fatal("rename failed")
	}
}

func TestXUpdateInsertRemove(t *testing.T) {
	s := seedStore(t)
	mods := buildMods(t, `
		<xu:insert-before select="/book/price">
			<xu:element name="isbn">12345</xu:element>
		</xu:insert-before>
		<xu:insert-after select="/book/price">
			<xu:element name="stock">7</xu:element>
		</xu:insert-after>`)
	if _, err := s.XUpdate("", "book1.xml", mods); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.GetDocument("", "book1.xml")
	kids := doc.ChildElements()
	names := make([]string, len(kids))
	for i, k := range kids {
		names[i] = k.Name.Local
	}
	want := "title,isbn,price,stock"
	if strings.Join(names, ",") != want {
		t.Fatalf("children = %v, want %s", names, want)
	}

	rm := buildMods(t, `<xu:remove select="/book/isbn"/>`)
	if _, err := s.XUpdate("", "book1.xml", rm); err != nil {
		t.Fatal(err)
	}
	doc, _ = s.GetDocument("", "book1.xml")
	if doc.Find("", "isbn") != nil {
		t.Fatal("remove failed")
	}
}

func TestXUpdateNestedElementsAndAttributes(t *testing.T) {
	s := seedStore(t)
	mods := buildMods(t, `
		<xu:append select="/book">
			<xu:element name="review">
				<xu:attribute name="stars">5</xu:attribute>
				<xu:element name="by">anon</xu:element>
				great
			</xu:element>
		</xu:append>`)
	if _, err := s.XUpdate("", "book1.xml", mods); err != nil {
		t.Fatal(err)
	}
	doc, _ := s.GetDocument("", "book1.xml")
	rev := doc.Find("", "review")
	if rev == nil || rev.AttrValue("", "stars") != "5" {
		t.Fatalf("review = %s", xmlutil.MarshalString(doc))
	}
	if rev.FindText("", "by") != "anon" {
		t.Fatal("nested element lost")
	}
	if !strings.Contains(rev.Text(), "great") {
		t.Fatal("text content lost")
	}
}

func TestXUpdateAtomicity(t *testing.T) {
	s := seedStore(t)
	// Second op fails (root removal); the first must not be applied.
	mods := buildMods(t, `
		<xu:update select="/book/price">1</xu:update>
		<xu:remove select="/book"/>`)
	if _, err := s.XUpdate("", "book1.xml", mods); err == nil {
		t.Fatal("expected failure")
	}
	doc, _ := s.GetDocument("", "book1.xml")
	if doc.FindText("", "price") != "10" {
		t.Fatal("partial update leaked")
	}
}

func TestXUpdateErrors(t *testing.T) {
	s := seedStore(t)
	if _, err := s.XUpdate("", "book1.xml", nil); err == nil {
		t.Fatal("nil modifications")
	}
	bad, _ := xmlutil.ParseString(`<wrong/>`)
	if _, err := s.XUpdate("", "book1.xml", bad); err == nil {
		t.Fatal("wrong root")
	}
	noSel := buildMods(t, `<xu:remove/>`)
	if _, err := s.XUpdate("", "book1.xml", noSel); err == nil {
		t.Fatal("missing select")
	}
	unknown := buildMods(t, `<xu:teleport select="/book"/>`)
	if _, err := s.XUpdate("", "book1.xml", unknown); err == nil {
		t.Fatal("unknown operation")
	}
	if _, err := s.XUpdate("", "nope.xml", buildMods(t, `<xu:remove select="/x"/>`)); err == nil {
		t.Fatal("missing document")
	}
}

func TestXQueryPlainXPath(t *testing.T) {
	s := seedStore(t)
	res, err := s.XQueryExecute("", "/book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("res = %d", len(res))
	}
}

func TestXQueryFLWOR(t *testing.T) {
	s := seedStore(t)
	res, err := s.XQueryExecute("", `for $b in /book
		where $b/price > 15
		order by $b/price descending
		return <hit><t>{$b/title}</t><p>{$b/price}</p></hit>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res[0].Node.FindText("", "t") != "Beta" || res[0].Node.FindText("", "p") != "30" {
		t.Fatalf("first = %s", xmlutil.MarshalString(res[0].Node))
	}
	if res[1].Node.FindText("", "t") != "Gamma" {
		t.Fatalf("second = %s", xmlutil.MarshalString(res[1].Node))
	}
}

func TestXQueryLet(t *testing.T) {
	s := seedStore(t)
	res, err := s.XQueryExecute("", `for $b in /book
		let $t := $b/title
		where $b/price < 15
		return <cheap>{$t}</cheap>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node.Text() != "Alpha" {
		t.Fatalf("res = %+v", res)
	}
}

func TestXQueryIdentityReturn(t *testing.T) {
	s := seedStore(t)
	res, err := s.XQueryExecute("", `for $b in /book where $b/@id = '2' return {$b}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node.FindText("", "title") != "Beta" {
		t.Fatalf("res = %+v", res)
	}
}

func TestXQueryOrderAscendingNumeric(t *testing.T) {
	s := seedStore(t)
	res, err := s.XQueryExecute("", `for $b in /book order by $b/price return <p>{$b/price}</p>`)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{res[0].Node.Text(), res[1].Node.Text(), res[2].Node.Text()}
	if got[0] != "10" || got[1] != "20" || got[2] != "30" {
		t.Fatalf("order = %v", got)
	}
}

func TestXQueryErrors(t *testing.T) {
	s := seedStore(t)
	bad := []string{
		`for $b`,
		`for $b in`,
		`for $b in /book`,
		`for $b in /book return`,
		`for $b in /book order price return <x/>`,
		`for $b in /book return <x>{$unbound}</x>`,
		`for $b in /book return <unclosed>{$b}`,
	}
	for _, q := range bad {
		if _, err := s.XQueryExecute("", q); err == nil {
			t.Errorf("XQueryExecute(%q): expected error", q)
		}
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	s := seedStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				name := fmt.Sprintf("w%d-%d.xml", i, j)
				e, _ := xmlutil.ParseString(`<book><price>5</price></book>`)
				if err := s.AddDocument("", name, e); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.XPathQuery("", "/book/price"); err != nil {
					t.Error(err)
					return
				}
				if err := s.RemoveDocument("", name); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if n, _ := s.DocumentCount(""); n != 3 {
		t.Fatalf("count = %d", n)
	}
}

// Property: adding N uniquely named documents yields exactly N listed
// names, sorted.
func TestQuickDocumentNames(t *testing.T) {
	f := func(raw []string) bool {
		s := NewStore("q")
		seen := map[string]bool{}
		want := 0
		for i, r := range raw {
			name := fmt.Sprintf("%s-%d", sanitize(r), i)
			if seen[name] {
				continue
			}
			seen[name] = true
			e, _ := xmlutil.ParseString(`<d/>`)
			if err := s.AddDocument("", name, e); err != nil {
				return false
			}
			want++
		}
		names, err := s.ListDocuments("")
		if err != nil || len(names) != want {
			return false
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return "d" + b.String()
}

func buildMods(t testing.TB, inner string) *xmlutil.Element {
	t.Helper()
	doc := `<xu:modifications xmlns:xu="` + NSXUpdate + `">` + inner + `</xu:modifications>`
	e, err := xmlutil.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
