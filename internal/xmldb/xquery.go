package xmldb

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"dais/internal/xmlutil"
)

// XQuery implements a FLWOR-lite subset of XQuery sufficient for the
// WS-DAIX XQueryExecute operation:
//
//	for $v in <xpath>
//	[let $w := <xpath>]...
//	[where <condition>]
//	[order by <xpath> [descending]]
//	return <template>
//
// The for clause binds $v to each node selected by the XPath across all
// documents in the target collection. let binds additional expressions
// evaluated relative to $v. The condition and ordering key are XPath
// expressions evaluated with $v as context node (a leading $v/ prefix
// is accepted and stripped; bare $w references resolve let bindings).
// The return template is an XML fragment in which {$v}, {$w} and
// {$v/path} placeholders are substituted. A bare XPath string (no
// "for") is evaluated as a plain collection-wide XPath query.
type XQuery struct {
	source   string
	plainXP  *XPath // non-nil for bare XPath queries
	forVar   string
	forPath  *XPath
	lets     []letClause
	where    *XPath
	orderBy  *XPath
	orderDsc bool
	template string
}

type letClause struct {
	name string
	path *XPath
}

// CompileXQuery parses a FLWOR-lite query.
func CompileXQuery(q string) (*XQuery, error) {
	src := strings.TrimSpace(q)
	if !strings.HasPrefix(src, "for ") {
		xp, err := CompileXPath(src)
		if err != nil {
			return nil, fmt.Errorf("xquery: %w", err)
		}
		return &XQuery{source: q, plainXP: xp}, nil
	}
	xq := &XQuery{source: q}
	rest := src[len("for "):]

	// for $v in PATH
	varName, rest, err := takeVar(rest)
	if err != nil {
		return nil, fmt.Errorf("xquery: for clause: %w", err)
	}
	xq.forVar = varName
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "in ") {
		return nil, fmt.Errorf("xquery: expected 'in' after for variable")
	}
	rest = rest[len("in "):]
	pathText, rest := takeUntilKeyword(rest, []string{"let ", "where ", "order ", "return "})
	fp, err := CompileXPath(strings.TrimSpace(pathText))
	if err != nil {
		return nil, fmt.Errorf("xquery: for path: %w", err)
	}
	xq.forPath = fp

	for {
		rest = strings.TrimSpace(rest)
		switch {
		case strings.HasPrefix(rest, "let "):
			rest = rest[len("let "):]
			name, r2, err := takeVar(rest)
			if err != nil {
				return nil, fmt.Errorf("xquery: let clause: %w", err)
			}
			rest = strings.TrimSpace(r2)
			if !strings.HasPrefix(rest, ":=") {
				return nil, fmt.Errorf("xquery: expected ':=' in let clause")
			}
			rest = rest[2:]
			var text string
			text, rest = takeUntilKeyword(rest, []string{"let ", "where ", "order ", "return "})
			lp, err := CompileXPath(stripVarPrefix(strings.TrimSpace(text), xq.forVar))
			if err != nil {
				return nil, fmt.Errorf("xquery: let path: %w", err)
			}
			xq.lets = append(xq.lets, letClause{name: name, path: lp})
		case strings.HasPrefix(rest, "where "):
			var text string
			text, rest = takeUntilKeyword(rest[len("where "):], []string{"order ", "return "})
			wp, err := CompileXPath(stripVarPrefix(strings.TrimSpace(text), xq.forVar))
			if err != nil {
				return nil, fmt.Errorf("xquery: where: %w", err)
			}
			xq.where = wp
		case strings.HasPrefix(rest, "order by "):
			var text string
			text, rest = takeUntilKeyword(rest[len("order by "):], []string{"return "})
			text = strings.TrimSpace(text)
			if strings.HasSuffix(text, " descending") {
				xq.orderDsc = true
				text = strings.TrimSuffix(text, " descending")
			} else {
				text = strings.TrimSuffix(text, " ascending")
			}
			op, err := CompileXPath(stripVarPrefix(strings.TrimSpace(text), xq.forVar))
			if err != nil {
				return nil, fmt.Errorf("xquery: order by: %w", err)
			}
			xq.orderBy = op
		case strings.HasPrefix(rest, "order "):
			return nil, fmt.Errorf("xquery: expected 'order by'")
		case strings.HasPrefix(rest, "return "):
			xq.template = strings.TrimSpace(rest[len("return "):])
			if xq.template == "" {
				return nil, fmt.Errorf("xquery: empty return clause")
			}
			return xq, nil
		default:
			return nil, fmt.Errorf("xquery: expected let/where/order by/return near %q", truncate(rest, 30))
		}
	}
}

func takeVar(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "$") {
		return "", s, fmt.Errorf("expected $variable")
	}
	i := 1
	for i < len(s) && (isXPNamePart(s[i])) {
		i++
	}
	if i == 1 {
		return "", s, fmt.Errorf("empty variable name")
	}
	return s[1:i], s[i:], nil
}

// takeUntilKeyword splits s at the first top-level occurrence of any
// keyword (outside quotes/brackets), returning the prefix and the rest
// starting at the keyword.
func takeUntilKeyword(s string, kws []string) (string, string) {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		}
		if depth == 0 && (i == 0 || s[i-1] == ' ' || s[i-1] == '\n' || s[i-1] == '\t') {
			for _, kw := range kws {
				if strings.HasPrefix(s[i:], kw) {
					return s[:i], s[i:]
				}
			}
		}
	}
	return s, ""
}

// stripVarPrefix rewrites "$v/path" to "path" and "$v" to "." so the
// expression can be evaluated with the bound node as context.
func stripVarPrefix(expr, varName string) string {
	pfx := "$" + varName
	out := expr
	for {
		i := strings.Index(out, pfx)
		if i < 0 {
			return out
		}
		end := i + len(pfx)
		if end < len(out) && out[end] == '/' {
			out = out[:i] + out[end+1:]
		} else {
			out = out[:i] + "." + out[end:]
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Execute runs the query over the collection at path, returning result
// elements (one per for-binding for FLWOR queries, or per match for
// plain XPath queries).
func (s *Store) XQueryExecute(path, query string) ([]QueryResult, error) {
	return s.XQueryExecuteContext(context.Background(), path, query)
}

// XQueryExecuteContext is XQueryExecute under a context; cancellation is
// observed per document through the underlying XPath evaluation.
func (s *Store) XQueryExecuteContext(ctx context.Context, path, query string) ([]QueryResult, error) {
	xq, err := CompileXQuery(query)
	if err != nil {
		return nil, err
	}
	if xq.plainXP != nil {
		return s.XPathQueryContext(ctx, path, xq.plainXP.String())
	}
	// Gather bindings across all documents.
	matches, err := s.XPathQueryContext(ctx, path, xq.forPath.String())
	if err != nil {
		return nil, err
	}
	type binding struct {
		doc  string
		node *xmlutil.Element
		lets map[string]string
		key  string
	}
	var bindings []binding
	for _, m := range matches {
		if !m.IsNode {
			continue
		}
		b := binding{doc: m.Document, node: m.Node, lets: map[string]string{}}
		for _, lc := range xq.lets {
			v, err := lc.path.Eval(m.Node)
			if err != nil {
				return nil, fmt.Errorf("xquery: let $%s: %w", lc.name, err)
			}
			b.lets[lc.name] = v.AsString()
		}
		if xq.where != nil {
			v, err := xq.where.Eval(m.Node)
			if err != nil {
				return nil, fmt.Errorf("xquery: where: %w", err)
			}
			if !v.AsBool() {
				continue
			}
		}
		if xq.orderBy != nil {
			v, err := xq.orderBy.Eval(m.Node)
			if err != nil {
				return nil, fmt.Errorf("xquery: order by: %w", err)
			}
			b.key = v.AsString()
		}
		bindings = append(bindings, b)
	}
	if xq.orderBy != nil {
		sort.SliceStable(bindings, func(i, j int) bool {
			a, b := bindings[i].key, bindings[j].key
			// Numeric comparison when both parse as numbers.
			an, bn := stringValue(a).AsNumber(), stringValue(b).AsNumber()
			var less bool
			if an == an && bn == bn { // neither is NaN
				less = an < bn
			} else {
				less = a < b
			}
			if xq.orderDsc {
				return !less && a != b
			}
			return less
		})
	}
	out := make([]QueryResult, 0, len(bindings))
	for _, b := range bindings {
		frag, err := xq.instantiate(b.node, b.lets)
		if err != nil {
			return nil, err
		}
		out = append(out, QueryResult{Document: b.doc, Node: frag, IsNode: true})
	}
	return out, nil
}

// instantiate substitutes {$var} and {$v/path} placeholders in the
// return template and parses the result as XML. A template that is a
// single placeholder returning the bound node itself yields a clone of
// that node.
func (xq *XQuery) instantiate(node *xmlutil.Element, lets map[string]string) (*xmlutil.Element, error) {
	tpl := xq.template
	if tpl == "{$"+xq.forVar+"}" {
		return node.Clone(), nil
	}
	var b strings.Builder
	for i := 0; i < len(tpl); {
		j := strings.Index(tpl[i:], "{")
		if j < 0 {
			b.WriteString(tpl[i:])
			break
		}
		b.WriteString(tpl[i : i+j])
		i += j
		k := strings.Index(tpl[i:], "}")
		if k < 0 {
			return nil, fmt.Errorf("xquery: unterminated placeholder in template")
		}
		expr := strings.TrimSpace(tpl[i+1 : i+k])
		i += k + 1
		val, err := xq.placeholderValue(expr, node, lets)
		if err != nil {
			return nil, err
		}
		b.WriteString(escapeForXML(val))
	}
	frag, err := xmlutil.ParseString(b.String())
	if err != nil {
		return nil, fmt.Errorf("xquery: return template produced invalid XML: %w", err)
	}
	return frag, nil
}

func (xq *XQuery) placeholderValue(expr string, node *xmlutil.Element, lets map[string]string) (string, error) {
	if strings.HasPrefix(expr, "$") {
		name := expr[1:]
		if i := strings.IndexAny(name, "/["); i < 0 {
			if name == xq.forVar {
				return node.Text(), nil
			}
			if v, ok := lets[name]; ok {
				return v, nil
			}
			return "", fmt.Errorf("xquery: unbound variable $%s", name)
		}
	}
	xp, err := CompileXPath(stripVarPrefix(expr, xq.forVar))
	if err != nil {
		return "", fmt.Errorf("xquery: placeholder %q: %w", expr, err)
	}
	v, err := xp.Eval(node)
	if err != nil {
		return "", err
	}
	return v.AsString(), nil
}

func escapeForXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
