package xmldb

import (
	"fmt"
	"math"
	"strings"

	"dais/internal/xmlutil"
)

// evalXP evaluates an XPath AST node in a context.
func evalXP(e xpExpr, ctx *xpContext) (XPathValue, error) {
	switch n := e.(type) {
	case *xpLiteral:
		return n.v, nil
	case *xpOr:
		for _, a := range n.args {
			v, err := evalXP(a, ctx)
			if err != nil {
				return XPathValue{}, err
			}
			if v.AsBool() {
				return boolValue(true), nil
			}
		}
		return boolValue(false), nil
	case *xpAnd:
		for _, a := range n.args {
			v, err := evalXP(a, ctx)
			if err != nil {
				return XPathValue{}, err
			}
			if !v.AsBool() {
				return boolValue(false), nil
			}
		}
		return boolValue(true), nil
	case *xpNeg:
		v, err := evalXP(n.operand, ctx)
		if err != nil {
			return XPathValue{}, err
		}
		return numberValue(-v.AsNumber()), nil
	case *xpCompare:
		return evalCompare(n, ctx)
	case *xpArith:
		l, err := evalXP(n.left, ctx)
		if err != nil {
			return XPathValue{}, err
		}
		r, err := evalXP(n.right, ctx)
		if err != nil {
			return XPathValue{}, err
		}
		lf, rf := l.AsNumber(), r.AsNumber()
		switch n.op {
		case "+":
			return numberValue(lf + rf), nil
		case "-":
			return numberValue(lf - rf), nil
		case "*":
			return numberValue(lf * rf), nil
		case "div":
			return numberValue(lf / rf), nil
		case "mod":
			return numberValue(math.Mod(lf, rf)), nil
		}
		return XPathValue{}, fmt.Errorf("unknown arithmetic op %q", n.op)
	case *xpUnion:
		seen := map[*xmlutil.Element]bool{}
		var nodes []*xmlutil.Element
		for _, pth := range n.paths {
			v, err := evalXP(pth, ctx)
			if err != nil {
				return XPathValue{}, err
			}
			if v.Kind != KindNodeSet {
				return XPathValue{}, fmt.Errorf("union operand is not a node-set")
			}
			for _, nd := range v.Nodes {
				if !seen[nd] {
					seen[nd] = true
					nodes = append(nodes, nd)
				}
			}
		}
		return nodeSetValue(nodes), nil
	case *xpFunc:
		return evalXPFunc(n, ctx)
	case *xpPath:
		return evalPath(n, ctx)
	}
	return XPathValue{}, fmt.Errorf("unsupported xpath node %T", e)
}

// evalCompare implements XPath comparison semantics, including the
// node-set existential rules.
func evalCompare(n *xpCompare, ctx *xpContext) (XPathValue, error) {
	l, err := evalXP(n.left, ctx)
	if err != nil {
		return XPathValue{}, err
	}
	r, err := evalXP(n.right, ctx)
	if err != nil {
		return XPathValue{}, err
	}
	// Node-set vs anything: existential over string-values.
	if l.Kind == KindNodeSet || r.Kind == KindNodeSet {
		lvals := compareOperands(l)
		rvals := compareOperands(r)
		for _, lv := range lvals {
			for _, rv := range rvals {
				if compareAtoms(n.op, lv, rv) {
					return boolValue(true), nil
				}
			}
		}
		return boolValue(false), nil
	}
	return boolValue(compareAtoms(n.op, l, r)), nil
}

// compareOperands explodes a node-set into per-node string values, or
// wraps a scalar.
func compareOperands(v XPathValue) []XPathValue {
	if v.Kind != KindNodeSet {
		return []XPathValue{v}
	}
	out := make([]XPathValue, len(v.Nodes))
	for i, n := range v.Nodes {
		out[i] = stringValue(n.Text())
	}
	return out
}

func compareAtoms(op string, l, r XPathValue) bool {
	switch op {
	case "=", "!=":
		var eq bool
		switch {
		case l.Kind == KindBoolean || r.Kind == KindBoolean:
			eq = l.AsBool() == r.AsBool()
		case l.Kind == KindNumber || r.Kind == KindNumber:
			eq = l.AsNumber() == r.AsNumber()
		default:
			eq = l.AsString() == r.AsString()
		}
		if op == "=" {
			return eq
		}
		return !eq
	case "<":
		return l.AsNumber() < r.AsNumber()
	case "<=":
		return l.AsNumber() <= r.AsNumber()
	case ">":
		return l.AsNumber() > r.AsNumber()
	case ">=":
		return l.AsNumber() >= r.AsNumber()
	}
	return false
}

// evalPath walks location steps from the context node (or the start
// expression / document root for absolute paths).
func evalPath(p *xpPath, ctx *xpContext) (XPathValue, error) {
	var current []*xmlutil.Element
	switch {
	case p.start != nil:
		v, err := evalXP(p.start, ctx)
		if err != nil {
			return XPathValue{}, err
		}
		if v.Kind != KindNodeSet {
			return XPathValue{}, fmt.Errorf("filter expression is not a node-set")
		}
		current = v.Nodes
	case p.absolute:
		root := ctx.node
		for root.Parent() != nil {
			root = root.Parent()
		}
		if len(p.steps) == 0 {
			return nodeSetValue([]*xmlutil.Element{root}), nil
		}
		// Start from a synthetic document node whose only child is the
		// root element, so "/a" tests the root element itself.
		current = []*xmlutil.Element{wrapRoot(root)}
	default:
		current = []*xmlutil.Element{ctx.node}
	}
	for _, step := range p.steps {
		next, err := applyStep(step, current)
		if err != nil {
			return XPathValue{}, err
		}
		current = next
	}
	return nodeSetValue(current), nil
}

// wrapRoot builds a synthetic document node whose only child is the
// root element; absolute paths step through it so the first step can
// test the root element itself. The root's parent pointer is left
// untouched, so ".." from the root still yields nothing.
func wrapRoot(root *xmlutil.Element) *xmlutil.Element {
	w := &xmlutil.Element{Name: xmlutil.Name{Local: "#document"}}
	w.Children = []xmlutil.Node{root}
	return w
}

// applyStep applies one location step to every node in the input set,
// concatenating results in document order and applying predicates.
func applyStep(step xpStep, input []*xmlutil.Element) ([]*xmlutil.Element, error) {
	var out []*xmlutil.Element
	seen := map[*xmlutil.Element]bool{}
	for _, node := range input {
		axis := step.axis
		// Text nodes are not modelled as separate tree nodes: "x/text()"
		// selects x itself when x is a leaf (its string-value is the
		// text), so retarget the child axis to self for text() tests.
		if step.test == "text()" && axis == "child" {
			axis = "self"
		}
		candidates := axisNodes(axis, node)
		matched := candidates[:0:0]
		for _, c := range candidates {
			if nodeTestMatches(step.test, c) {
				matched = append(matched, c)
			}
		}
		// Predicates apply per input node with positional context.
		for _, pred := range step.predicate {
			var kept []*xmlutil.Element
			for i, c := range matched {
				pctx := &xpContext{node: c, position: i + 1, size: len(matched)}
				v, err := evalXP(pred, pctx)
				if err != nil {
					return nil, err
				}
				keep := false
				if v.Kind == KindNumber {
					keep = int(v.Num) == pctx.position
				} else {
					keep = v.AsBool()
				}
				if keep {
					kept = append(kept, c)
				}
			}
			matched = kept
		}
		for _, c := range matched {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out, nil
}

// axisNodes returns the candidate nodes along an axis from a node.
func axisNodes(axis string, node *xmlutil.Element) []*xmlutil.Element {
	switch axis {
	case "child":
		return node.ChildElements()
	case "self":
		return []*xmlutil.Element{node}
	case "parent":
		if p := node.Parent(); p != nil {
			return []*xmlutil.Element{p}
		}
		return nil
	case "descendant":
		var out []*xmlutil.Element
		collectDescendants(node, &out)
		return out
	case "descendant-or-self":
		out := []*xmlutil.Element{node}
		collectDescendants(node, &out)
		return out
	case "ancestor":
		var out []*xmlutil.Element
		for p := node.Parent(); p != nil; p = p.Parent() {
			out = append(out, p)
		}
		return out
	case "ancestor-or-self":
		out := []*xmlutil.Element{node}
		for p := node.Parent(); p != nil; p = p.Parent() {
			out = append(out, p)
		}
		return out
	case "following-sibling", "preceding-sibling":
		p := node.Parent()
		if p == nil {
			return nil
		}
		sibs := p.ChildElements()
		idx := -1
		for i, s := range sibs {
			if s == node {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil
		}
		if axis == "following-sibling" {
			return sibs[idx+1:]
		}
		// preceding-sibling in reverse document order per XPath.
		out := make([]*xmlutil.Element, 0, idx)
		for i := idx - 1; i >= 0; i-- {
			out = append(out, sibs[i])
		}
		return out
	case "attribute":
		out := make([]*xmlutil.Element, 0, len(node.Attrs))
		for _, a := range node.Attrs {
			// Attributes are modelled as synthetic leaf elements so the
			// uniform node-set machinery applies; their string-value is
			// the attribute value.
			ae := &xmlutil.Element{Name: a.Name}
			ae.SetText(a.Value)
			out = append(out, ae)
		}
		return out
	}
	return nil
}

func collectDescendants(node *xmlutil.Element, out *[]*xmlutil.Element) {
	for _, c := range node.ChildElements() {
		*out = append(*out, c)
		collectDescendants(c, out)
	}
}

// nodeTestMatches applies a node test to a candidate element.
func nodeTestMatches(test string, node *xmlutil.Element) bool {
	switch test {
	case "node()":
		return true
	case "text()":
		// Our node-set model carries only elements; treat text() as
		// matching elements with no element children (their
		// string-value is the text).
		return len(node.ChildElements()) == 0
	case "*":
		return true
	default:
		// Name test; an optional prefix is ignored (documents in the
		// DAIX store are matched by local name).
		name := test
		if i := strings.Index(test, ":"); i >= 0 {
			name = test[i+1:]
		}
		return node.Name.Local == name
	}
}

// evalXPFunc dispatches the supported XPath core functions.
func evalXPFunc(n *xpFunc, ctx *xpContext) (XPathValue, error) {
	argVals := make([]XPathValue, len(n.args))
	for i, a := range n.args {
		v, err := evalXP(a, ctx)
		if err != nil {
			return XPathValue{}, err
		}
		argVals[i] = v
	}
	argStr := func(i int) string {
		if i < len(argVals) {
			return argVals[i].AsString()
		}
		return ctx.node.Text()
	}
	switch n.name {
	case "position":
		return numberValue(float64(ctx.position)), nil
	case "last":
		return numberValue(float64(ctx.size)), nil
	case "count":
		if len(argVals) != 1 || argVals[0].Kind != KindNodeSet {
			return XPathValue{}, fmt.Errorf("count() requires a node-set argument")
		}
		return numberValue(float64(len(argVals[0].Nodes))), nil
	case "name", "local-name":
		if len(argVals) == 1 && argVals[0].Kind == KindNodeSet {
			if len(argVals[0].Nodes) == 0 {
				return stringValue(""), nil
			}
			return stringValue(argVals[0].Nodes[0].Name.Local), nil
		}
		return stringValue(ctx.node.Name.Local), nil
	case "string":
		if len(argVals) == 0 {
			return stringValue(ctx.node.Text()), nil
		}
		return stringValue(argVals[0].AsString()), nil
	case "number":
		if len(argVals) == 0 {
			return numberValue(stringValue(ctx.node.Text()).AsNumber()), nil
		}
		return numberValue(argVals[0].AsNumber()), nil
	case "boolean":
		if len(argVals) != 1 {
			return XPathValue{}, fmt.Errorf("boolean() requires one argument")
		}
		return boolValue(argVals[0].AsBool()), nil
	case "not":
		if len(argVals) != 1 {
			return XPathValue{}, fmt.Errorf("not() requires one argument")
		}
		return boolValue(!argVals[0].AsBool()), nil
	case "true":
		return boolValue(true), nil
	case "false":
		return boolValue(false), nil
	case "contains":
		if len(argVals) != 2 {
			return XPathValue{}, fmt.Errorf("contains() requires two arguments")
		}
		return boolValue(strings.Contains(argStr(0), argStr(1))), nil
	case "starts-with":
		if len(argVals) != 2 {
			return XPathValue{}, fmt.Errorf("starts-with() requires two arguments")
		}
		return boolValue(strings.HasPrefix(argStr(0), argStr(1))), nil
	case "string-length":
		return numberValue(float64(len([]rune(argStr(0))))), nil
	case "normalize-space":
		return stringValue(strings.Join(strings.Fields(argStr(0)), " ")), nil
	case "concat":
		var b strings.Builder
		for i := range argVals {
			b.WriteString(argVals[i].AsString())
		}
		return stringValue(b.String()), nil
	case "substring":
		if len(argVals) < 2 || len(argVals) > 3 {
			return XPathValue{}, fmt.Errorf("substring() requires 2 or 3 arguments")
		}
		s := []rune(argVals[0].AsString())
		start := int(math.Round(argVals[1].AsNumber())) - 1
		end := len(s)
		if len(argVals) == 3 {
			end = start + int(math.Round(argVals[2].AsNumber()))
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			end = start
		}
		return stringValue(string(s[start:end])), nil
	case "sum":
		if len(argVals) != 1 || argVals[0].Kind != KindNodeSet {
			return XPathValue{}, fmt.Errorf("sum() requires a node-set argument")
		}
		total := 0.0
		for _, nd := range argVals[0].Nodes {
			total += stringValue(nd.Text()).AsNumber()
		}
		return numberValue(total), nil
	case "floor":
		return numberValue(math.Floor(argVals[0].AsNumber())), nil
	case "ceiling":
		return numberValue(math.Ceil(argVals[0].AsNumber())), nil
	case "round":
		return numberValue(math.Round(argVals[0].AsNumber())), nil
	}
	return XPathValue{}, fmt.Errorf("unknown function %s()", n.name)
}
