package xmldb

import (
	"math"
	"testing"

	"dais/internal/xmlutil"
)

const catalogDoc = `<catalog>
  <book id="1" genre="db">
    <title>Principles of Distributed Database Systems</title>
    <author>Ozsu</author>
    <price>85</price>
  </book>
  <book id="2" genre="grid">
    <title>The Grid</title>
    <author>Foster</author>
    <price>60</price>
  </book>
  <book id="3" genre="db">
    <title>Transaction Processing</title>
    <author>Gray</author>
    <price>110</price>
  </book>
  <editor>Pierson</editor>
</catalog>`

func parseDoc(t testing.TB, s string) *xmlutil.Element {
	t.Helper()
	e, err := xmlutil.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func selectNodes(t testing.TB, doc *xmlutil.Element, expr string) []*xmlutil.Element {
	t.Helper()
	xp, err := CompileXPath(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	nodes, err := xp.Select(doc)
	if err != nil {
		t.Fatalf("select %q: %v", expr, err)
	}
	return nodes
}

func evalValue(t testing.TB, doc *xmlutil.Element, expr string) XPathValue {
	t.Helper()
	xp, err := CompileXPath(expr)
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	v, err := xp.Eval(doc)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestXPathChildSteps(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	if n := selectNodes(t, doc, "book"); len(n) != 3 {
		t.Fatalf("book = %d nodes", len(n))
	}
	if n := selectNodes(t, doc, "book/title"); len(n) != 3 {
		t.Fatalf("book/title = %d nodes", len(n))
	}
	titles := selectNodes(t, doc, "/catalog/book/title")
	if len(titles) != 3 || titles[1].Text() != "The Grid" {
		t.Fatalf("titles = %v", titles)
	}
}

func TestXPathDescendant(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	if n := selectNodes(t, doc, "//title"); len(n) != 3 {
		t.Fatalf("//title = %d", len(n))
	}
	if n := selectNodes(t, doc, "//book//author"); len(n) != 3 {
		t.Fatalf("//book//author = %d", len(n))
	}
	if n := selectNodes(t, doc, "descendant::price"); len(n) != 3 {
		t.Fatalf("descendant::price = %d", len(n))
	}
}

func TestXPathWildcardAndSelfParent(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	if n := selectNodes(t, doc, "*"); len(n) != 4 {
		t.Fatalf("* = %d", len(n))
	}
	if n := selectNodes(t, doc, "."); len(n) != 1 || n[0] != doc {
		t.Fatalf("self = %v", n)
	}
	n := selectNodes(t, doc, "book/title/..")
	if len(n) != 3 || n[0].Name.Local != "book" {
		t.Fatalf("parent = %v", n)
	}
}

func TestXPathAttributes(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	attrs := selectNodes(t, doc, "book/@id")
	if len(attrs) != 3 || attrs[0].Text() != "1" {
		t.Fatalf("@id = %v", attrs)
	}
	all := selectNodes(t, doc, "book[1]/@*")
	if len(all) != 2 {
		t.Fatalf("@* = %d", len(all))
	}
}

func TestXPathPositionalPredicates(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	n := selectNodes(t, doc, "book[2]")
	if len(n) != 1 || n[0].AttrValue("", "id") != "2" {
		t.Fatalf("book[2] = %v", n)
	}
	n = selectNodes(t, doc, "book[last()]")
	if len(n) != 1 || n[0].AttrValue("", "id") != "3" {
		t.Fatalf("book[last()] = %v", n)
	}
	n = selectNodes(t, doc, "book[position() < 3]")
	if len(n) != 2 {
		t.Fatalf("position()<3 = %d", len(n))
	}
}

func TestXPathValuePredicates(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	n := selectNodes(t, doc, "book[@genre='db']")
	if len(n) != 2 {
		t.Fatalf("genre=db = %d", len(n))
	}
	n = selectNodes(t, doc, "book[price > 80]/title")
	if len(n) != 2 {
		t.Fatalf("price>80 = %d", len(n))
	}
	n = selectNodes(t, doc, "book[author='Gray']")
	if len(n) != 1 || n[0].AttrValue("", "id") != "3" {
		t.Fatalf("author=Gray = %v", n)
	}
	// existence predicate
	n = selectNodes(t, doc, "book[price]")
	if len(n) != 3 {
		t.Fatalf("has price = %d", len(n))
	}
	// chained predicates
	n = selectNodes(t, doc, "book[@genre='db'][price < 100]")
	if len(n) != 1 || n[0].AttrValue("", "id") != "1" {
		t.Fatalf("chained = %v", n)
	}
}

func TestXPathBooleanOperators(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	n := selectNodes(t, doc, "book[@genre='grid' or price > 100]")
	if len(n) != 2 {
		t.Fatalf("or = %d", len(n))
	}
	n = selectNodes(t, doc, "book[@genre='db' and price < 100]")
	if len(n) != 1 {
		t.Fatalf("and = %d", len(n))
	}
	n = selectNodes(t, doc, "book[not(@genre='db')]")
	if len(n) != 1 {
		t.Fatalf("not = %d", len(n))
	}
}

func TestXPathUnion(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	n := selectNodes(t, doc, "book/title | book/author")
	if len(n) != 6 {
		t.Fatalf("union = %d", len(n))
	}
	// dedup
	n = selectNodes(t, doc, "book | book")
	if len(n) != 3 {
		t.Fatalf("self union = %d", len(n))
	}
}

func TestXPathFunctions(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	if v := evalValue(t, doc, "count(book)"); v.AsNumber() != 3 {
		t.Fatalf("count = %v", v)
	}
	if v := evalValue(t, doc, "sum(book/price)"); v.AsNumber() != 255 {
		t.Fatalf("sum = %v", v)
	}
	if v := evalValue(t, doc, "contains('hello world', 'wor')"); !v.AsBool() {
		t.Fatal("contains")
	}
	if v := evalValue(t, doc, "starts-with(editor, 'Pie')"); !v.AsBool() {
		t.Fatal("starts-with")
	}
	if v := evalValue(t, doc, "string-length('abcd')"); v.AsNumber() != 4 {
		t.Fatal("string-length")
	}
	if v := evalValue(t, doc, "concat('a', 'b', 'c')"); v.AsString() != "abc" {
		t.Fatal("concat")
	}
	if v := evalValue(t, doc, "substring('hello', 2, 3)"); v.AsString() != "ell" {
		t.Fatalf("substring = %q", v.AsString())
	}
	if v := evalValue(t, doc, "normalize-space('  a   b ')"); v.AsString() != "a b" {
		t.Fatalf("normalize-space = %q", v.AsString())
	}
	if v := evalValue(t, doc, "floor(2.7) + ceiling(2.1) + round(2.5)"); v.AsNumber() != 8 {
		t.Fatalf("math funcs = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "name(book)"); v.AsString() != "book" {
		t.Fatalf("name = %q", v.AsString())
	}
}

func TestXPathArithmetic(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	if v := evalValue(t, doc, "1 + 2 * 3"); v.AsNumber() != 7 {
		t.Fatalf("arith = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "10 div 4"); v.AsNumber() != 2.5 {
		t.Fatalf("div = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "10 mod 3"); v.AsNumber() != 1 {
		t.Fatalf("mod = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "-book[1]/price"); v.AsNumber() != -85 {
		t.Fatalf("negation = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "sum(book/price) div count(book)"); v.AsNumber() != 85 {
		t.Fatalf("avg = %v", v.AsNumber())
	}
}

func TestXPathComparisonSemantics(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	// node-set = scalar is existential
	if v := evalValue(t, doc, "book/price = 60"); !v.AsBool() {
		t.Fatal("existential = failed")
	}
	// != is also existential (some node differs)
	if v := evalValue(t, doc, "book/price != 60"); !v.AsBool() {
		t.Fatal("existential != failed")
	}
	if v := evalValue(t, doc, "book/price = 61"); v.AsBool() {
		t.Fatal("= should be false")
	}
	if v := evalValue(t, doc, "editor = 'Pierson'"); !v.AsBool() {
		t.Fatal("string compare failed")
	}
}

func TestXPathTypeConversions(t *testing.T) {
	v := stringValue("3.5")
	if v.AsNumber() != 3.5 {
		t.Fatal("string→number")
	}
	if !v.AsBool() {
		t.Fatal("nonempty string is true")
	}
	if stringValue("").AsBool() {
		t.Fatal("empty string is false")
	}
	if !math.IsNaN(stringValue("abc").AsNumber()) {
		t.Fatal("bad number should be NaN")
	}
	if numberValue(0).AsBool() {
		t.Fatal("0 is false")
	}
	if boolValue(true).AsNumber() != 1 {
		t.Fatal("true is 1")
	}
	if numberValue(4).AsString() != "4" {
		t.Fatal("integral number formats without decimal point")
	}
	if boolValue(false).AsString() != "false" {
		t.Fatal("boolean string")
	}
}

func TestXPathCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"book[",
		"book[]",
		"foo(",
		"'unterminated",
		"book/",
		"following::x", // unsupported axis
		"book[@]",
		"1 +",
		"..book",
	}
	for _, expr := range bad {
		if _, err := CompileXPath(expr); err == nil {
			t.Errorf("CompileXPath(%q): expected error", expr)
		}
	}
}

func TestXPathNamespacePrefixIgnored(t *testing.T) {
	doc := parseDoc(t, `<r xmlns:p="urn:p"><p:x>1</p:x><x>2</x></r>`)
	// local-name matching: both elements match "x"
	if n := selectNodes(t, doc, "x"); len(n) != 2 {
		t.Fatalf("x = %d", len(n))
	}
	if n := selectNodes(t, doc, "p:x"); len(n) != 2 {
		t.Fatalf("p:x (prefix ignored) = %d", len(n))
	}
}

func TestXPathTextTest(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	n := selectNodes(t, doc, "book[1]/title/text()")
	if len(n) != 1 || n[0].Text() != "Principles of Distributed Database Systems" {
		t.Fatalf("text() = %v", n)
	}
}

func TestXPathFunctionPathContinuation(t *testing.T) {
	doc := parseDoc(t, catalogDoc)
	// parenthesised expression followed by a path
	n := selectNodes(t, doc, "(book | editor)/..")
	if len(n) != 1 || n[0].Name.Local != "catalog" {
		t.Fatalf("continuation = %v", n)
	}
}

func TestXPathStringFunc(t *testing.T) {
	doc := parseDoc(t, `<a><b>42</b></a>`)
	if v := evalValue(t, doc, "string(b)"); v.AsString() != "42" {
		t.Fatalf("string(b) = %q", v.AsString())
	}
	if v := evalValue(t, doc, "number(b) * 2"); v.AsNumber() != 84 {
		t.Fatalf("number = %v", v.AsNumber())
	}
	if v := evalValue(t, doc, "boolean(b)"); !v.AsBool() {
		t.Fatal("boolean(nodeset)")
	}
	if v := evalValue(t, doc, "boolean(missing)"); v.AsBool() {
		t.Fatal("boolean(empty nodeset)")
	}
}

func TestXPathExtendedAxes(t *testing.T) {
	doc := parseDoc(t, `<r><a><b1/><b2><c/></b2><b3/></a></r>`)
	c := selectNodes(t, doc, "//c")[0]

	anc, err := CompileXPath("ancestor::*")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := anc.Select(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[0].Name.Local != "b2" || nodes[2].Name.Local != "r" {
		t.Fatalf("ancestors = %v", names(nodes))
	}

	aos, _ := CompileXPath("ancestor-or-self::*")
	nodes, _ = aos.Select(c)
	if len(nodes) != 4 || nodes[0].Name.Local != "c" {
		t.Fatalf("ancestor-or-self = %v", names(nodes))
	}

	// Sibling axes from b2.
	n := selectNodes(t, doc, "//b2")[0]
	fs, _ := CompileXPath("following-sibling::*")
	nodes, _ = fs.Select(n)
	if len(nodes) != 1 || nodes[0].Name.Local != "b3" {
		t.Fatalf("following = %v", names(nodes))
	}
	ps, _ := CompileXPath("preceding-sibling::*")
	nodes, _ = ps.Select(n)
	if len(nodes) != 1 || nodes[0].Name.Local != "b1" {
		t.Fatalf("preceding = %v", names(nodes))
	}

	// Within a full path with predicates.
	got := selectNodes(t, doc, "//c/ancestor::a/b1/following-sibling::b2")
	if len(got) != 1 {
		t.Fatalf("composed = %v", names(got))
	}
}

func names(nodes []*xmlutil.Element) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name.Local
	}
	return out
}
