// Package xmldb implements the XML data-resource substrate behind the
// WS-DAIX realisation: named collections of XML documents with nested
// sub-collections, an XPath 1.0 subset query engine, an XUpdate subset
// for in-place document modification, and a FLWOR-lite XQuery layer.
package xmldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dais/internal/xmlutil"
)

// XPathValue is the XPath 1.0 value model: one of node-set, boolean,
// number or string.
type XPathValue struct {
	Nodes  []*xmlutil.Element // node-set (nil when not a node-set)
	IsNode bool
	Bool   bool
	Num    float64
	Str    string
	Kind   XPathKind
}

// XPathKind discriminates XPathValue.
type XPathKind int

// XPath value kinds.
const (
	KindNodeSet XPathKind = iota
	KindBoolean
	KindNumber
	KindString
)

func nodeSetValue(nodes []*xmlutil.Element) XPathValue {
	return XPathValue{Kind: KindNodeSet, Nodes: nodes, IsNode: true}
}
func boolValue(b bool) XPathValue      { return XPathValue{Kind: KindBoolean, Bool: b} }
func numberValue(f float64) XPathValue { return XPathValue{Kind: KindNumber, Num: f} }
func stringValue(s string) XPathValue  { return XPathValue{Kind: KindString, Str: s} }

// AsBool converts per XPath boolean() rules.
func (v XPathValue) AsBool() bool {
	switch v.Kind {
	case KindNodeSet:
		return len(v.Nodes) > 0
	case KindBoolean:
		return v.Bool
	case KindNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case KindString:
		return v.Str != ""
	}
	return false
}

// AsString converts per XPath string() rules (first node's string-value
// for node-sets).
func (v XPathValue) AsString() string {
	switch v.Kind {
	case KindNodeSet:
		if len(v.Nodes) == 0 {
			return ""
		}
		return v.Nodes[0].Text()
	case KindBoolean:
		if v.Bool {
			return "true"
		}
		return "false"
	case KindNumber:
		if v.Num == math.Trunc(v.Num) && !math.IsInf(v.Num, 0) {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindString:
		return v.Str
	}
	return ""
}

// AsNumber converts per XPath number() rules.
func (v XPathValue) AsNumber() float64 {
	switch v.Kind {
	case KindNodeSet, KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.AsString()), 64)
		if err != nil {
			return math.NaN()
		}
		return f
	case KindBoolean:
		if v.Bool {
			return 1
		}
		return 0
	case KindNumber:
		return v.Num
	}
	return math.NaN()
}

// xpContext is the evaluation context for one node.
type xpContext struct {
	node     *xmlutil.Element
	position int // 1-based
	size     int
}

// xpath AST.

type xpExpr interface{ xp() }

type xpOr struct{ args []xpExpr }
type xpAnd struct{ args []xpExpr }
type xpCompare struct {
	op          string
	left, right xpExpr
}
type xpArith struct {
	op          string
	left, right xpExpr
}
type xpNeg struct{ operand xpExpr }
type xpUnion struct{ paths []xpExpr }
type xpLiteral struct{ v XPathValue }
type xpFunc struct {
	name string
	args []xpExpr
}
type xpPath struct {
	absolute bool
	// start is an optional primary expression the path filters from
	// (e.g. a function returning a node-set); nil = context node.
	start xpExpr
	steps []xpStep
}
type xpStep struct {
	axis      string // child, descendant-or-self, self, parent, attribute
	test      string // element name, "*", "node()", "text()"
	predicate []xpExpr
}

func (*xpOr) xp()      {}
func (*xpAnd) xp()     {}
func (*xpCompare) xp() {}
func (*xpArith) xp()   {}
func (*xpNeg) xp()     {}
func (*xpUnion) xp()   {}
func (*xpLiteral) xp() {}
func (*xpFunc) xp()    {}
func (*xpPath) xp()    {}

// XPath is a compiled XPath expression.
type XPath struct {
	source string
	root   xpExpr
}

// String returns the original expression text.
func (x *XPath) String() string { return x.source }

// CompileXPath parses an XPath 1.0 subset expression. Supported: the
// child, descendant / descendant-or-self (// forms), self (.), parent
// (..), attribute (@), ancestor, ancestor-or-self, following-sibling
// and preceding-sibling axes; name, *, node() and text() tests;
// positional and boolean predicates; the operators or/and/=/!=/</<=/
// >/>=/+/-/*/div/mod/|; and the functions position(), last(), count(),
// name(), string(), number(), boolean(), not(), true(), false(),
// contains(), starts-with(), string-length(), normalize-space(),
// concat(), substring(), sum(), floor(), ceiling(), round(), text().
func CompileXPath(expr string) (*XPath, error) {
	p := &xpParser{src: expr}
	p.lex()
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("xpath %q: %w", expr, err)
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("xpath %q: unexpected %q", expr, p.cur().text)
	}
	return &XPath{source: expr, root: e}, nil
}

// Eval evaluates the compiled expression with the given element as both
// context node and document root.
func (x *XPath) Eval(doc *xmlutil.Element) (XPathValue, error) {
	return evalXP(x.root, &xpContext{node: doc, position: 1, size: 1})
}

// Select is a convenience returning matched nodes; non-node results are
// an error.
func (x *XPath) Select(doc *xmlutil.Element) ([]*xmlutil.Element, error) {
	v, err := x.Eval(doc)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindNodeSet {
		return nil, fmt.Errorf("xpath %q: result is not a node-set", x.source)
	}
	return v.Nodes, nil
}

// --- lexer ---

type xpToken struct {
	kind string // name, num, str, sym, eof
	text string
}

type xpParser struct {
	src  string
	toks []xpToken
	pos  int
	err  error
}

func (p *xpParser) lex() {
	s := p.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			q := c
			j := i + 1
			for j < len(s) && s[j] != q {
				j++
			}
			if j >= len(s) {
				p.err = fmt.Errorf("unterminated string literal")
				p.toks = append(p.toks, xpToken{kind: "eof"})
				return
			}
			p.toks = append(p.toks, xpToken{kind: "str", text: s[i+1 : j]})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i
			seenDot := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || (s[j] == '.' && !seenDot)) {
				if s[j] == '.' {
					seenDot = true
				}
				j++
			}
			p.toks = append(p.toks, xpToken{kind: "num", text: s[i:j]})
			i = j
		case isXPNameStart(c):
			j := i
			for j < len(s) && isXPNamePart(s[j]) {
				// A "::" axis separator must not be swallowed into the
				// name; a single ':' (prefix separator) is part of it.
				if s[j] == ':' && j+1 < len(s) && s[j+1] == ':' {
					break
				}
				j++
			}
			p.toks = append(p.toks, xpToken{kind: "name", text: s[i:j]})
			i = j
		default:
			for _, op := range []string{"//", "!=", "<=", ">=", "::", ".."} {
				if strings.HasPrefix(s[i:], op) {
					p.toks = append(p.toks, xpToken{kind: "sym", text: op})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '/', '[', ']', '(', ')', '@', '*', '|', '=', '<', '>', '+', '-', ',', '.':
				p.toks = append(p.toks, xpToken{kind: "sym", text: string(c)})
				i++
			default:
				p.err = fmt.Errorf("unexpected character %q", c)
				p.toks = append(p.toks, xpToken{kind: "eof"})
				return
			}
		next:
		}
	}
	p.toks = append(p.toks, xpToken{kind: "eof"})
}

func isXPNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isXPNamePart(c byte) bool {
	return isXPNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}

func (p *xpParser) cur() xpToken { return p.toks[p.pos] }
func (p *xpParser) atEOF() bool  { return p.cur().kind == "eof" }
func (p *xpParser) acceptSym(s string) bool {
	if p.cur().kind == "sym" && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}
func (p *xpParser) acceptName(s string) bool {
	if p.cur().kind == "name" && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}
func (p *xpParser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return fmt.Errorf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

// --- parser (precedence: or < and < compare < add < mul < unary < union < path) ---

func (p *xpParser) parseExpr() (xpExpr, error) {
	if p.err != nil {
		return nil, p.err
	}
	return p.parseOr()
}

func (p *xpParser) parseOr() (xpExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []xpExpr{left}
	for p.acceptName("or") {
		a, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &xpOr{args: args}, nil
}

func (p *xpParser) parseAnd() (xpExpr, error) {
	left, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	args := []xpExpr{left}
	for p.acceptName("and") {
		a, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	if len(args) == 1 {
		return left, nil
	}
	return &xpAnd{args: args}, nil
}

func (p *xpParser) parseCompare() (xpExpr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("="):
			op = "="
		case p.acceptSym("!="):
			op = "!="
		case p.acceptSym("<="):
			op = "<="
		case p.acceptSym(">="):
			op = ">="
		case p.acceptSym("<"):
			op = "<"
		case p.acceptSym(">"):
			op = ">"
		default:
			return left, nil
		}
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		left = &xpCompare{op: op, left: left, right: right}
	}
}

func (p *xpParser) parseAdd() (xpExpr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &xpArith{op: op, left: left, right: right}
	}
}

func (p *xpParser) parseMul() (xpExpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("*"):
			op = "*"
		case p.acceptName("div"):
			op = "div"
		case p.acceptName("mod"):
			op = "mod"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &xpArith{op: op, left: left, right: right}
	}
}

func (p *xpParser) parseUnary() (xpExpr, error) {
	if p.acceptSym("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &xpNeg{operand: e}, nil
	}
	return p.parseUnion()
}

func (p *xpParser) parseUnion() (xpExpr, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	paths := []xpExpr{left}
	for p.acceptSym("|") {
		n, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		paths = append(paths, n)
	}
	if len(paths) == 1 {
		return left, nil
	}
	return &xpUnion{paths: paths}, nil
}

func (p *xpParser) parsePath() (xpExpr, error) {
	path := &xpPath{}
	switch {
	case p.acceptSym("//"):
		path.absolute = true
		path.steps = append(path.steps, xpStep{axis: "descendant-or-self", test: "node()"})
	case p.acceptSym("/"):
		path.absolute = true
		if p.pathDone() {
			return path, nil // bare "/" selects the root
		}
	default:
		// Primary expression start? (literal, number, function, parens)
		t := p.cur()
		if t.kind == "str" {
			p.pos++
			return &xpLiteral{v: stringValue(t.text)}, nil
		}
		if t.kind == "num" {
			p.pos++
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return &xpLiteral{v: numberValue(f)}, nil
		}
		if t.kind == "sym" && t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			// May be followed by a path continuation: (expr)/a/b
			if p.cur().kind == "sym" && (p.cur().text == "/" || p.cur().text == "//") {
				path.start = e
				goto steps
			}
			return e, nil
		}
		// Function call? name followed by "(" — but not node()/text()
		// which are node tests.
		if t.kind == "name" && p.toks[p.pos+1].kind == "sym" && p.toks[p.pos+1].text == "(" &&
			t.text != "node" && t.text != "text" {
			p.pos += 2
			fn := &xpFunc{name: t.text}
			if !p.acceptSym(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.args = append(fn.args, a)
					if !p.acceptSym(",") {
						break
					}
				}
				if err := p.expectSym(")"); err != nil {
					return nil, err
				}
			}
			if p.cur().kind == "sym" && (p.cur().text == "/" || p.cur().text == "//") {
				path.start = fn
				goto steps
			}
			return fn, nil
		}
	}
steps:
	// mustStep is true whenever a separator has just been consumed, so
	// a trailing "/" is a syntax error.
	mustStep := path.absolute || len(path.steps) > 0
	if path.start != nil {
		// A "(expr)/step" or "fn()/step" continuation: the separator is
		// still pending.
		if p.acceptSym("//") {
			path.steps = append(path.steps, xpStep{axis: "descendant-or-self", test: "node()"})
		} else if !p.acceptSym("/") {
			return nil, fmt.Errorf("expected path after filter expression")
		}
		mustStep = true
	}
	for {
		step, ok, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		if !ok {
			if mustStep {
				return nil, fmt.Errorf("expected location step, found %q", p.cur().text)
			}
			break
		}
		path.steps = append(path.steps, *step)
		if p.acceptSym("//") {
			path.steps = append(path.steps, xpStep{axis: "descendant-or-self", test: "node()"})
			mustStep = true
			continue
		}
		if p.acceptSym("/") {
			mustStep = true
			continue
		}
		break
	}
	if len(path.steps) == 0 && path.start == nil && !path.absolute {
		return nil, fmt.Errorf("expected expression, found %q", p.cur().text)
	}
	return path, nil
}

func (p *xpParser) pathDone() bool {
	t := p.cur()
	if t.kind == "eof" {
		return true
	}
	if t.kind == "sym" {
		switch t.text {
		case "]", ")", ",", "|", "=", "!=", "<", "<=", ">", ">=", "+", "-":
			return true
		}
	}
	if t.kind == "name" && (t.text == "or" || t.text == "and" || t.text == "div" || t.text == "mod") {
		return true
	}
	return false
}

// parseStep parses one location step; ok=false when the current token
// cannot start a step.
func (p *xpParser) parseStep() (*xpStep, bool, error) {
	st := &xpStep{axis: "child"}
	t := p.cur()
	switch {
	case p.acceptSym("."):
		st.axis, st.test = "self", "node()"
	case p.acceptSym(".."):
		st.axis, st.test = "parent", "node()"
	case p.acceptSym("@"):
		st.axis = "attribute"
		if p.acceptSym("*") {
			st.test = "*"
		} else if p.cur().kind == "name" {
			st.test = p.cur().text
			p.pos++
		} else {
			return nil, false, fmt.Errorf("expected attribute name after @")
		}
	case p.acceptSym("*"):
		st.test = "*"
	case t.kind == "name":
		// axis::test ?
		if p.toks[p.pos+1].kind == "sym" && p.toks[p.pos+1].text == "::" {
			axis := t.text
			p.pos += 2
			switch axis {
			case "child", "descendant", "descendant-or-self", "self", "parent",
				"attribute", "ancestor", "ancestor-or-self",
				"following-sibling", "preceding-sibling":
				st.axis = axis
			default:
				return nil, false, fmt.Errorf("unsupported axis %q", axis)
			}
			switch {
			case p.acceptSym("*"):
				st.test = "*"
			case p.cur().kind == "name":
				name := p.cur().text
				p.pos++
				if p.acceptSym("(") {
					if err := p.expectSym(")"); err != nil {
						return nil, false, err
					}
					st.test = name + "()"
				} else {
					st.test = name
				}
			default:
				return nil, false, fmt.Errorf("expected node test after %s::", axis)
			}
		} else {
			name := t.text
			p.pos++
			if p.acceptSym("(") {
				if err := p.expectSym(")"); err != nil {
					return nil, false, err
				}
				st.test = name + "()"
			} else {
				st.test = name
			}
		}
	default:
		return nil, false, nil
	}
	for p.acceptSym("[") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectSym("]"); err != nil {
			return nil, false, err
		}
		st.predicate = append(st.predicate, e)
	}
	return st, true, nil
}
