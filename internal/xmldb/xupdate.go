package xmldb

import (
	"fmt"

	"dais/internal/xmlutil"
)

// NSXUpdate is the XUpdate namespace the WS-DAIX XUpdateExecute
// operation accepts.
const NSXUpdate = "http://www.xmldb.org/xupdate"

// XUpdate executes an XUpdate modifications document against the named
// document in the collection at path, in place. It returns the number
// of nodes affected.
//
// Supported operations (children of xupdate:modifications, each with a
// select attribute holding an XPath to the target nodes):
//
//	<xupdate:insert-before> / <xupdate:insert-after>  — new sibling
//	<xupdate:append>                                  — new last child
//	<xupdate:update>                                  — replace content
//	<xupdate:remove>                                  — delete node
//	<xupdate:rename>                                  — change element name
//
// Content for insert/append is given by xupdate:element children (with
// name attributes, nested arbitrarily) or literal elements; update
// takes the new text content.
func (s *Store) XUpdate(path, name string, modifications *xmlutil.Element) (int, error) {
	if modifications == nil || modifications.Name.Local != "modifications" {
		return 0, fmt.Errorf("xupdate: root element must be xupdate:modifications")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.resolve(path)
	if err != nil {
		return 0, err
	}
	doc, ok := c.docs[name]
	if !ok {
		return 0, fmt.Errorf("xmldb: document %q not found in %q", name, path)
	}
	// Work on a copy so a failing operation mid-sequence leaves the
	// stored document untouched (operation-list atomicity).
	work := doc.Clone()
	total := 0
	for _, op := range modifications.ChildElements() {
		n, err := applyXUpdateOp(work, op)
		if err != nil {
			return 0, fmt.Errorf("xupdate: %s: %w", op.Name.Local, err)
		}
		total += n
	}
	c.docs[name] = work
	return total, nil
}

func applyXUpdateOp(doc *xmlutil.Element, op *xmlutil.Element) (int, error) {
	sel, ok := op.Attr("", "select")
	if !ok {
		return 0, fmt.Errorf("missing select attribute")
	}
	xp, err := CompileXPath(sel)
	if err != nil {
		return 0, err
	}
	targets, err := xp.Select(doc)
	if err != nil {
		return 0, err
	}
	switch op.Name.Local {
	case "insert-before", "insert-after":
		content, err := xupdateContent(op)
		if err != nil {
			return 0, err
		}
		for _, t := range targets {
			parent := t.Parent()
			if parent == nil {
				return 0, fmt.Errorf("cannot insert siblings of the document root")
			}
			idx := childIndex(parent, t)
			if idx < 0 {
				return 0, fmt.Errorf("target detached from parent")
			}
			if op.Name.Local == "insert-after" {
				idx++
			}
			for k, ce := range content {
				insertChildAt(parent, idx+k, ce.Clone())
			}
		}
		return len(targets), nil
	case "append":
		content, err := xupdateContent(op)
		if err != nil {
			return 0, err
		}
		for _, t := range targets {
			for _, ce := range content {
				t.AppendChild(ce.Clone())
			}
		}
		return len(targets), nil
	case "update":
		for _, t := range targets {
			t.SetText(op.Text())
		}
		return len(targets), nil
	case "remove":
		for _, t := range targets {
			parent := t.Parent()
			if parent == nil {
				return 0, fmt.Errorf("cannot remove the document root")
			}
			parent.RemoveChild(t)
		}
		return len(targets), nil
	case "rename":
		newName := op.Text()
		if newName == "" {
			return 0, fmt.Errorf("rename requires the new name as content")
		}
		for _, t := range targets {
			t.Name.Local = newName
		}
		return len(targets), nil
	}
	return 0, fmt.Errorf("unsupported operation %q", op.Name.Local)
}

// xupdateContent converts an operation's children into the elements to
// insert: xupdate:element wrappers become elements named by their name
// attribute; anything else is taken literally.
func xupdateContent(op *xmlutil.Element) ([]*xmlutil.Element, error) {
	var out []*xmlutil.Element
	for _, c := range op.ChildElements() {
		e, err := expandXUpdateElement(c)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no content to insert")
	}
	return out, nil
}

func expandXUpdateElement(e *xmlutil.Element) (*xmlutil.Element, error) {
	if e.Name.Space == NSXUpdate && e.Name.Local == "element" {
		name, ok := e.Attr("", "name")
		if !ok || name == "" {
			return nil, fmt.Errorf("xupdate:element requires a name attribute")
		}
		ne := xmlutil.NewElement("", name)
		for _, c := range e.Children {
			switch n := c.(type) {
			case xmlutil.Text:
				ne.Children = append(ne.Children, n)
			case *xmlutil.Element:
				if n.Name.Space == NSXUpdate && n.Name.Local == "attribute" {
					aname, _ := n.Attr("", "name")
					if aname == "" {
						return nil, fmt.Errorf("xupdate:attribute requires a name attribute")
					}
					ne.SetAttr("", aname, n.Text())
					continue
				}
				ce, err := expandXUpdateElement(n)
				if err != nil {
					return nil, err
				}
				ne.AppendChild(ce)
			}
		}
		return ne, nil
	}
	return e.Clone(), nil
}

func childIndex(parent, child *xmlutil.Element) int {
	for i, c := range parent.Children {
		if el, ok := c.(*xmlutil.Element); ok && el == child {
			return i
		}
	}
	return -1
}

func insertChildAt(parent *xmlutil.Element, idx int, child *xmlutil.Element) {
	parent.InsertChildAt(idx, child)
}
