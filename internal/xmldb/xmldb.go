package xmldb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dais/internal/xmlutil"
)

// Store is an XML database: a root collection (with nested
// sub-collections) of named XML documents. It is the "externally
// managed data resource" substrate behind WS-DAIX services.
type Store struct {
	mu   sync.RWMutex
	name string
	root *Collection
}

// NewStore creates an empty store whose root collection carries the
// store name.
func NewStore(name string) *Store {
	return &Store{name: name, root: newCollection(name)}
}

// Name returns the store name.
func (s *Store) Name() string { return s.name }

// Collection is a named set of XML documents plus sub-collections.
// Access it only through Store methods, which handle locking.
type Collection struct {
	name string
	docs map[string]*xmlutil.Element
	subs map[string]*Collection
}

func newCollection(name string) *Collection {
	return &Collection{name: name, docs: map[string]*xmlutil.Element{}, subs: map[string]*Collection{}}
}

// resolve walks a slash-separated collection path from the root. An
// empty path resolves to the root collection.
func (s *Store) resolve(path string) (*Collection, error) {
	c := s.root
	if path == "" || path == "/" {
		return c, nil
	}
	for _, part := range strings.Split(strings.Trim(path, "/"), "/") {
		if part == "" {
			continue
		}
		sub, ok := c.subs[part]
		if !ok {
			return nil, fmt.Errorf("xmldb: collection %q does not exist", path)
		}
		c = sub
	}
	return c, nil
}

// CreateCollection creates a sub-collection at the given path; parents
// must already exist.
func (s *Store) CreateCollection(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, base := splitPath(path)
	if base == "" {
		return fmt.Errorf("xmldb: empty collection name")
	}
	pc, err := s.resolve(parent)
	if err != nil {
		return err
	}
	if _, exists := pc.subs[base]; exists {
		return fmt.Errorf("xmldb: collection %q already exists", path)
	}
	pc.subs[base] = newCollection(base)
	return nil
}

// RemoveCollection removes a sub-collection and everything beneath it.
func (s *Store) RemoveCollection(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, base := splitPath(path)
	pc, err := s.resolve(parent)
	if err != nil {
		return err
	}
	if _, exists := pc.subs[base]; !exists {
		return fmt.Errorf("xmldb: collection %q does not exist", path)
	}
	delete(pc.subs, base)
	return nil
}

// ListCollections returns the sorted names of sub-collections at path.
func (s *Store) ListCollections(path string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(c.subs))
	for n := range c.subs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// AddDocument stores a document under the given name in the collection
// at path. It fails if the name is taken.
func (s *Store) AddDocument(path, name string, doc *xmlutil.Element) error {
	if name == "" {
		return fmt.Errorf("xmldb: empty document name")
	}
	if doc == nil {
		return fmt.Errorf("xmldb: nil document")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.resolve(path)
	if err != nil {
		return err
	}
	if _, exists := c.docs[name]; exists {
		return fmt.Errorf("xmldb: document %q already exists in %q", name, path)
	}
	c.docs[name] = doc.Clone()
	return nil
}

// PutDocument stores or replaces a document.
func (s *Store) PutDocument(path, name string, doc *xmlutil.Element) error {
	if name == "" || doc == nil {
		return fmt.Errorf("xmldb: empty document name or nil document")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.resolve(path)
	if err != nil {
		return err
	}
	c.docs[name] = doc.Clone()
	return nil
}

// GetDocument returns a deep copy of the named document.
func (s *Store) GetDocument(path, name string) (*xmlutil.Element, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	doc, ok := c.docs[name]
	if !ok {
		return nil, fmt.Errorf("xmldb: document %q not found in %q", name, path)
	}
	return doc.Clone(), nil
}

// RemoveDocument deletes the named document.
func (s *Store) RemoveDocument(path, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.resolve(path)
	if err != nil {
		return err
	}
	if _, ok := c.docs[name]; !ok {
		return fmt.Errorf("xmldb: document %q not found in %q", name, path)
	}
	delete(c.docs, name)
	return nil
}

// ListDocuments returns the sorted document names in the collection.
func (s *Store) ListDocuments(path string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(c.docs))
	for n := range c.docs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// DocumentCount returns the number of documents in the collection
// (not counting sub-collections).
func (s *Store) DocumentCount(path string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return 0, err
	}
	return len(c.docs), nil
}

// QueryResult pairs a matched node with the document it came from.
type QueryResult struct {
	Document string
	Node     *xmlutil.Element // deep copy, safe to retain
	Value    string           // string-value for non-node results
	IsNode   bool
}

// XPathQuery evaluates an XPath expression against every document in
// the collection (sorted by document name) and returns the matches.
// Node-set results yield one QueryResult per node; scalar results yield
// a single QueryResult per document with Value set.
func (s *Store) XPathQuery(path, expr string) ([]QueryResult, error) {
	return s.XPathQueryContext(context.Background(), path, expr)
}

// XPathQueryContext is XPathQuery under a context: cancellation is
// observed between documents, so a query over a large collection stops
// promptly when the deadline expires.
func (s *Store) XPathQueryContext(ctx context.Context, path, expr string) ([]QueryResult, error) {
	xp, err := CompileXPath(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(c.docs))
	for n := range c.docs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []QueryResult
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xmldb: query cancelled: %w", err)
		}
		v, err := xp.Eval(c.docs[name])
		if err != nil {
			return nil, fmt.Errorf("xmldb: document %q: %w", name, err)
		}
		if v.Kind == KindNodeSet {
			for _, n := range v.Nodes {
				out = append(out, QueryResult{Document: name, Node: n.Clone(), IsNode: true})
			}
		} else {
			out = append(out, QueryResult{Document: name, Value: v.AsString()})
		}
	}
	return out, nil
}

// XPathQueryDocument evaluates an XPath expression against one document.
func (s *Store) XPathQueryDocument(path, name, expr string) ([]QueryResult, error) {
	xp, err := CompileXPath(expr)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	doc, ok := c.docs[name]
	if !ok {
		return nil, fmt.Errorf("xmldb: document %q not found in %q", name, path)
	}
	v, err := xp.Eval(doc)
	if err != nil {
		return nil, err
	}
	var out []QueryResult
	if v.Kind == KindNodeSet {
		for _, n := range v.Nodes {
			out = append(out, QueryResult{Document: name, Node: n.Clone(), IsNode: true})
		}
	} else {
		out = append(out, QueryResult{Document: name, Value: v.AsString()})
	}
	return out, nil
}

func splitPath(path string) (parent, base string) {
	p := strings.Trim(path, "/")
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[:i], p[i+1:]
	}
	return "", p
}
