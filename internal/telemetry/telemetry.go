// Package telemetry is the dependency-free observability subsystem of
// the DAIS service stack: atomic counters, gauges and fixed-bucket
// log-scale latency histograms labelled by operation name, interface
// class and fault code, a bounded ring buffer of per-request spans with
// a slow-call log, and Prometheus-text-format exposition.
//
// The package deliberately has no third-party dependencies: metric
// instruments are plain atomics, exposition is the Prometheus text
// format written by hand, and tracing is an in-process ring buffer.
// It attaches to the request path through the soap.Interceptor hook
// point introduced in PR 1 (see interceptor.go) and to the WSRF
// registry through scrape-time collectors, so every layer of the stack
// reports through one Registry without knowing about the others.
package telemetry

import (
	"log/slog"
	"time"

	"dais/internal/soap"
)

// Metric names exposed by the standard Observer instruments. Keeping
// them as constants lets tests and the daisbench scraper refer to the
// series without restating strings.
const (
	MetricRequests = "dais_requests_total"          // side, op, class, code
	MetricInFlight = "dais_inflight_requests"       // side
	MetricLatency  = "dais_request_seconds"         // side, op
	MetricBytes    = "dais_envelope_bytes_total"    // side, direction, op
	MetricFaults   = "dais_faults_total"            // side, op, code
	MetricWSRFLive = "dais_wsrf_resources"          // service, kind
	MetricWSRFDead = "dais_wsrf_terminations_total" // service
	// Encode-path series collected at scrape time from soap.EncodeStats.
	MetricEncodeBytes = "dais_encode_bytes_total"        // (no labels)
	MetricEncodePool  = "dais_encode_pool_buffers_total" // outcome
)

// Label values for the side and direction keys.
const (
	SideClient  = "client"
	SideServer  = "server"
	DirIn       = "in"
	DirOut      = "out"
	CodeOK      = "ok"      // successful exchange
	CodeError   = "error"   // untyped error
	CodeUnknown = "unknown" // operation not in the catalog
)

// Observer bundles the standard instruments the SOAP interceptors and
// the WSRF collectors record into, all registered on one Registry.
// A nil *Observer is valid everywhere and records nothing.
type Observer struct {
	Registry *Registry
	Requests *CounterVec
	InFlight *GaugeVec
	Latency  *HistogramVec
	Bytes    *CounterVec
	Faults   *CounterVec
	Tracer   *Tracer
}

// ObserverOption configures NewObserver.
type ObserverOption func(*observerConfig)

type observerConfig struct {
	spanCapacity  int
	slowThreshold time.Duration
	logger        *slog.Logger
}

// WithSpanCapacity bounds the span ring buffer (default 256).
func WithSpanCapacity(n int) ObserverOption {
	return func(c *observerConfig) { c.spanCapacity = n }
}

// WithSlowThreshold sets the duration above which a span is logged as a
// slow call (default 1s; 0 disables the slow log).
func WithSlowThreshold(d time.Duration) ObserverOption {
	return func(c *observerConfig) { c.slowThreshold = d }
}

// WithLogger directs the slow-call log (default slog.Default()).
func WithLogger(l *slog.Logger) ObserverOption {
	return func(c *observerConfig) { c.logger = l }
}

// NewObserver builds an Observer with a fresh Registry and the standard
// instrument set.
func NewObserver(opts ...ObserverOption) *Observer {
	cfg := observerConfig{spanCapacity: 256, slowThreshold: time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.logger == nil {
		cfg.logger = slog.Default()
	}
	reg := NewRegistry()
	obs := &Observer{
		Registry: reg,
		Requests: reg.NewCounterVec(MetricRequests,
			"SOAP exchanges by operation, interface class and outcome code.",
			"side", "op", "class", "code"),
		InFlight: reg.NewGaugeVec(MetricInFlight,
			"SOAP exchanges currently in flight.", "side"),
		Latency: reg.NewHistogramVec(MetricLatency,
			"SOAP exchange latency in seconds.", LatencyBuckets(), "side", "op"),
		Bytes: reg.NewCounterVec(MetricBytes,
			"Serialised envelope bytes by direction.", "side", "direction", "op"),
		Faults: reg.NewCounterVec(MetricFaults,
			"SOAP exchanges that ended in a fault, by fault code.",
			"side", "op", "code"),
		Tracer: NewTracer(cfg.spanCapacity, cfg.slowThreshold, cfg.logger),
	}
	// The soap encode counters are process-global atomics (the soap
	// package cannot import telemetry), so they surface as a scrape-time
	// collector rather than live instruments.
	reg.RegisterCollector(func(emit func(Sample)) {
		encoded, hits, misses := soap.EncodeStats()
		emit(Sample{Name: MetricEncodeBytes, Value: float64(encoded)})
		emit(Sample{Name: MetricEncodePool, Labels: map[string]string{"outcome": "hit"}, Value: float64(hits)})
		emit(Sample{Name: MetricEncodePool, Labels: map[string]string{"outcome": "miss"}, Value: float64(misses)})
	})
	return obs
}

// Default is the process-wide observer the service endpoint and
// consumer client install when no explicit observer is configured —
// the telemetry analogue of http.DefaultServeMux.
var Default = NewObserver()
