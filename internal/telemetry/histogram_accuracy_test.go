package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// maxRelErrBelow reports the worst-case relative interpolation error of
// the standard buckets for true values in (lo, hi]: half the relative
// width of the widest bucket covering that range. The linear
// interpolation inside a bucket can land anywhere within it, so the
// estimate is off by at most one bucket width; against the true value
// the bound is (hi-lo)/lo for the owning bucket.
func maxRelErrBelow(lo, hi float64) float64 {
	bounds := LatencyBuckets()
	worst := 0.0
	prev := 0.0
	for _, b := range bounds {
		if b > lo && prev < hi && prev > 0 {
			if w := (b - prev) / prev; w > worst {
				worst = w
			}
		}
		prev = b
	}
	return worst
}

// TestQuantileAccuracySyntheticDistribution pins the estimator error
// bound the capacity-curve SLO check relies on: p50/p99/p999 estimated
// from the fixed log buckets must stay within the owning bucket's
// relative width of the true sample quantile, for a sub-millisecond
// distribution (the regime the ×1.25 fine region was added for) and a
// mixed one spanning the coarse region.
func TestQuantileAccuracySyntheticDistribution(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand) time.Duration
		lo   float64 // support used for the error bound, seconds
		hi   float64
	}{
		{
			// Log-normal centred near 200µs: everything sub-millisecond
			// except a thin tail, the shape of an in-process SQL call.
			name: "submillisecond-lognormal",
			gen: func(r *rand.Rand) time.Duration {
				s := 200e-6 * math.Exp(r.NormFloat64()*0.35)
				return time.Duration(s * float64(time.Second))
			},
			lo: 50e-6, hi: 2e-3,
		},
		{
			// Bimodal: fast hits plus a 1% slow mode around 20ms — the
			// p999 lives in the slow mode, two decades from the p50.
			name: "bimodal-tail",
			gen: func(r *rand.Rand) time.Duration {
				if r.Float64() < 0.99 {
					return time.Duration((100e-6 + r.Float64()*300e-6) * float64(time.Second))
				}
				return time.Duration((10e-3 + r.Float64()*20e-3) * float64(time.Second))
			},
			lo: 50e-6, hi: 40e-3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			reg := NewRegistry()
			h := reg.NewHistogramVec("acc_seconds", "", LatencyBuckets(), "op").With("q")
			const n = 50_000
			samples := make([]time.Duration, n)
			for i := range samples {
				d := tc.gen(r)
				samples[i] = d
				h.Observe(d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			bound := maxRelErrBelow(tc.lo, tc.hi)
			if bound <= 0 || bound > 1.05 {
				t.Fatalf("degenerate error bound %v for [%v, %v]", bound, tc.lo, tc.hi)
			}
			for _, q := range []float64{0.50, 0.99, 0.999} {
				truth := samples[int(q*float64(n))-1]
				est := h.Quantile(q)
				rel := math.Abs(est.Seconds()-truth.Seconds()) / truth.Seconds()
				if rel > bound {
					t.Errorf("q=%v: estimate %v vs true %v: rel err %.3f > bucket bound %.3f",
						q, est, truth, rel, bound)
				}
				t.Logf("q=%v est=%v true=%v rel=%.3f (bound %.3f)", q, est, truth, rel, bound)
			}
		})
	}
}

// TestLatencyBucketsShape pins the invariants the estimator and the
// exposition depend on: strictly increasing bounds, sub-millisecond
// relative width ≤25%, fixed overall count, and coverage of the whole
// 20µs–18s operating range.
func TestLatencyBucketsShape(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 33 {
		t.Fatalf("bucket count changed: %d (update exposition-size expectations deliberately)", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
		if b[i] <= 1e-3 {
			if w := (b[i] - b[i-1]) / b[i-1]; w > 0.251 {
				t.Errorf("sub-ms bucket %d too wide: rel width %.3f > 0.25", i, w)
			}
		}
	}
	if b[0] > 25e-6 {
		t.Errorf("first bound %v misses fast in-process calls", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Errorf("last finite bound %v under 10s: slow scans all land in +Inf", last)
	}
}

// TestDeltaQuantile proves the scrape-delta path: quantiles over the
// growth between two scrapes must reflect only the observations made
// in the window, not the history before it.
func TestDeltaQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramVec("dq_seconds", "", LatencyBuckets(), "op").With("load")
	// History: a thousand fast calls.
	for i := 0; i < 1000; i++ {
		h.Observe(100 * time.Microsecond)
	}
	before, err := ParsePrometheus(dump(reg))
	if err != nil {
		t.Fatal(err)
	}
	// Window: a thousand slow calls.
	for i := 0; i < 1000; i++ {
		h.Observe(40 * time.Millisecond)
	}
	after, err := ParsePrometheus(dump(reg))
	if err != nil {
		t.Fatal(err)
	}
	filter := map[string]string{"op": "load"}
	p50 := DeltaQuantile(before, after, "dq_seconds", filter, 0.5)
	if p50 < 20*time.Millisecond {
		t.Errorf("window p50 %v polluted by pre-window history", p50)
	}
	if got := DeltaCount(before, after, "dq_seconds_count", filter); got != 1000 {
		t.Errorf("window count %v, want 1000", got)
	}
	// Whole-history quantile still sees both modes.
	if all := QuantileFromSamples(after, "dq_seconds", filter, 0.25); all > time.Millisecond {
		t.Errorf("cumulative p25 %v should still be fast", all)
	}
	// Empty before-scrape degrades to the cumulative estimate.
	if d := DeltaQuantile(nil, after, "dq_seconds", filter, 0.5); d == 0 {
		t.Error("DeltaQuantile with empty before scrape returned 0")
	}
}

func dump(reg *Registry) string {
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		panic(err)
	}
	return b.String()
}
