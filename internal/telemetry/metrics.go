package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sample is one exposed time-series value: a metric name, its label
// pairs and the current value. Snapshot flattens every instrument
// (histograms included, as _bucket/_sum/_count series) into samples, and
// ParsePrometheus parses scraped text back into the same shape, so the
// exposition round-trips.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Collector is a scrape-time callback: it emits samples computed on
// demand (e.g. live WSRF resource counts) instead of maintaining
// counters on the hot path.
type Collector func(emit func(Sample))

// Registry holds a set of metric instruments and scrape-time
// collectors. Instruments are created through the New* constructors and
// update lock-free with atomics; the registry lock only guards
// registration and label-child creation.
type Registry struct {
	mu         sync.RWMutex
	counters   []*CounterVec
	gauges     []*GaugeVec
	hists      []*HistogramVec
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// RegisterCollector adds a scrape-time sample source.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// NewCounterVec registers a labelled counter family. Registering a name
// the registry already holds returns the existing family instead of a
// duplicate series, so independent subsystems (every client's retry
// interceptor, every endpoint's admission gate) can bind the same
// metric on one shared registry without coordinating.
func (r *Registry) NewCounterVec(name, help string, keys ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.counters {
		if v.name == name {
			return v
		}
	}
	v := &CounterVec{family: family{name: name, help: help, keys: keys}}
	r.counters = append(r.counters, v)
	return v
}

// NewGaugeVec registers a labelled gauge family (or returns the
// existing family of that name, like NewCounterVec).
func (r *Registry) NewGaugeVec(name, help string, keys ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.gauges {
		if v.name == name {
			return v
		}
	}
	v := &GaugeVec{family: family{name: name, help: help, keys: keys}}
	r.gauges = append(r.gauges, v)
	return v
}

// NewHistogramVec registers a labelled histogram family with the given
// upper bucket bounds (seconds, ascending; +Inf is implicit), or
// returns the existing family of that name, like NewCounterVec.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, keys ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, v := range r.hists {
		if v.name == name {
			return v
		}
	}
	v := &HistogramVec{family: family{name: name, help: help, keys: keys}, bounds: bounds}
	r.hists = append(r.hists, v)
	return v
}

// family is the shared identity of a metric vec: name, help text and
// label keys, plus the children keyed by joined label values.
type family struct {
	name string
	help string
	keys []string
	mu   sync.RWMutex
	m    map[string]any
}

// labelKey joins label values into a map key. \xff cannot appear in
// UTF-8 label values, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// child returns the instrument for a label-value tuple, creating it
// with mk on first use. The fast path is a read-locked map hit.
func (f *family) child(values []string, mk func(vals []string) any) any {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.keys), len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	c, ok := f.m[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = make(map[string]any)
	}
	if c, ok := f.m[k]; ok {
		return c
	}
	c = mk(append([]string(nil), values...))
	f.m[k] = c
	return c
}

// children returns the instruments sorted by label tuple for stable
// exposition order.
func (f *family) children() []any {
	f.mu.RLock()
	defer f.mu.RUnlock()
	keys := make([]string, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]any, 0, len(keys))
	for _, k := range keys {
		out = append(out, f.m[k])
	}
	return out
}

// labels zips the family keys with a child's label values.
func (f *family) labels(values []string) map[string]string {
	out := make(map[string]string, len(f.keys))
	for i, k := range f.keys {
		out[k] = values[i]
	}
	return out
}

// CounterVec is a labelled family of monotonically increasing counters.
type CounterVec struct{ family }

// Counter is one monotonically increasing series.
type Counter struct {
	v      atomic.Int64
	labels []string
}

// With returns the counter for a label-value tuple (created on first
// use). The tuple length must match the family's label keys.
func (v *CounterVec) With(values ...string) *Counter {
	return v.child(values, func(vals []string) any { return &Counter{labels: vals} }).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// GaugeVec is a labelled family of gauges.
type GaugeVec struct{ family }

// Gauge is one series that can go up and down.
type Gauge struct {
	v      atomic.Int64
	labels []string
}

// With returns the gauge for a label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.child(values, func(vals []string) any { return &Gauge{labels: vals} }).(*Gauge)
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }
