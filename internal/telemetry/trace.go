package telemetry

import (
	"log/slog"
	"sync"
	"time"
)

// Span is one recorded request: the correlation key (the pipeline
// request ID), the wire-level action, the catalog operation label, the
// addressed data resource abstract name, and the outcome. Spans,
// structured logs and metrics all correlate on RequestID.
type Span struct {
	RequestID    string        `json:"request_id"`
	Side         string        `json:"side"`
	Action       string        `json:"action"`
	Op           string        `json:"op"`
	AbstractName string        `json:"abstract_name,omitempty"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration"`
	Code         string        `json:"code"`
}

// Tracer keeps the most recent spans in a bounded ring buffer and logs
// calls slower than a threshold through slog, tagged with the request
// ID. The ring bounds memory: with the default capacity of 256 spans
// the tracer never grows, no matter the request rate.
type Tracer struct {
	mu            sync.Mutex
	ring          []Span
	next          int
	total         uint64
	slowThreshold time.Duration
	logger        *slog.Logger
}

// NewTracer builds a tracer with the given ring capacity (minimum 1),
// slow-call threshold (0 disables the slow log) and logger (nil
// disables the slow log as well).
func NewTracer(capacity int, slowThreshold time.Duration, logger *slog.Logger) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Span, 0, capacity), slowThreshold: slowThreshold, logger: logger}
}

// Record appends a span, overwriting the oldest once the ring is full,
// and emits the slow-call log line when the span crosses the threshold.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
	logger, slow := t.logger, t.slowThreshold
	t.mu.Unlock()

	if logger != nil && slow > 0 && s.Duration >= slow {
		logger.Warn("slow call",
			"request_id", s.RequestID,
			"side", s.Side,
			"op", s.Op,
			"abstract_name", s.AbstractName,
			"duration", s.Duration,
			"code", s.Code)
	}
}

// Recent returns up to n spans, newest first.
func (t *Tracer) Recent(n int) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, 0, n)
	// The newest span sits just before next (once the ring has wrapped)
	// or at the end of the slice (while still filling).
	idx := t.next - 1
	if len(t.ring) < cap(t.ring) {
		idx = len(t.ring) - 1
	}
	for i := 0; i < n; i++ {
		j := (idx - i + size) % size
		out = append(out, t.ring[j])
	}
	return out
}

// Total reports how many spans have been recorded over the tracer's
// lifetime (including those evicted from the ring).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
