package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot flattens every registered instrument and collector into
// samples. Histograms expand to the Prometheus triplet: cumulative
// <name>_bucket{le="..."} series, <name>_sum and <name>_count.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	counters := append([]*CounterVec(nil), r.counters...)
	gauges := append([]*GaugeVec(nil), r.gauges...)
	hists := append([]*HistogramVec(nil), r.hists...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	var out []Sample
	for _, v := range counters {
		for _, c := range v.children() {
			c := c.(*Counter)
			out = append(out, Sample{Name: v.name, Labels: v.labels(c.labels), Value: float64(c.Value())})
		}
	}
	for _, v := range gauges {
		for _, c := range v.children() {
			g := c.(*Gauge)
			out = append(out, Sample{Name: v.name, Labels: v.labels(g.labels), Value: float64(g.Value())})
		}
	}
	for _, v := range hists {
		for _, c := range v.children() {
			h := c.(*Histogram)
			base := v.labels(h.labels)
			counts := h.snapshotBuckets()
			var cum uint64
			for i, n := range counts {
				cum += n
				le := "+Inf"
				if i < len(v.bounds) {
					le = formatFloat(v.bounds[i])
				}
				labels := cloneLabels(base)
				labels["le"] = le
				out = append(out, Sample{Name: v.name + "_bucket", Labels: labels, Value: float64(cum)})
			}
			out = append(out, Sample{Name: v.name + "_sum", Labels: cloneLabels(base), Value: h.Sum().Seconds()})
			out = append(out, Sample{Name: v.name + "_count", Labels: cloneLabels(base), Value: float64(h.Count())})
		}
	}
	for _, c := range collectors {
		c(func(s Sample) { out = append(out, s) })
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4), with # HELP and # TYPE comments
// per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	counters := append([]*CounterVec(nil), r.counters...)
	gauges := append([]*GaugeVec(nil), r.gauges...)
	hists := append([]*HistogramVec(nil), r.hists...)
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()

	for _, v := range counters {
		writeHeader(bw, v.name, v.help, "counter")
		for _, c := range v.children() {
			c := c.(*Counter)
			writeSample(bw, v.name, v.labels(c.labels), float64(c.Value()))
		}
	}
	for _, v := range gauges {
		writeHeader(bw, v.name, v.help, "gauge")
		for _, c := range v.children() {
			g := c.(*Gauge)
			writeSample(bw, v.name, v.labels(g.labels), float64(g.Value()))
		}
	}
	for _, v := range hists {
		writeHeader(bw, v.name, v.help, "histogram")
		for _, c := range v.children() {
			h := c.(*Histogram)
			base := v.labels(h.labels)
			counts := h.snapshotBuckets()
			var cum uint64
			for i, n := range counts {
				cum += n
				le := "+Inf"
				if i < len(v.bounds) {
					le = formatFloat(v.bounds[i])
				}
				labels := cloneLabels(base)
				labels["le"] = le
				writeSample(bw, v.name+"_bucket", labels, float64(cum))
			}
			writeSample(bw, v.name+"_sum", base, h.Sum().Seconds())
			writeSample(bw, v.name+"_count", base, float64(h.Count()))
		}
	}
	// Collector samples are grouped by name so families stay contiguous.
	var collected []Sample
	for _, c := range collectors {
		c(func(s Sample) { collected = append(collected, s) })
	}
	sort.SliceStable(collected, func(i, j int) bool { return collected[i].Name < collected[j].Name })
	prev := ""
	for _, s := range collected {
		if s.Name != prev {
			typ := "gauge"
			if strings.HasSuffix(s.Name, "_total") {
				typ = "counter"
			}
			writeHeader(bw, s.Name, "", typ)
			prev = s.Name
		}
		writeSample(bw, s.Name, s.Labels, s.Value)
	}
	return bw.Flush()
}

// Handler serves the registry at an HTTP endpoint (mount at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

func writeHeader(w *bufio.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

func writeSample(w *bufio.Writer, name string, labels map[string]string, value float64) {
	w.WriteString(name)
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s=%q", k, labels[k])
		}
		w.WriteByte('}')
	}
	fmt.Fprintf(w, " %s\n", formatFloat(value))
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func cloneLabels(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ParsePrometheus parses text in the Prometheus exposition format back
// into samples — the inverse of WritePrometheus for the subset this
// package emits. daisbench uses it to scrape a live daisd and report
// server-side latency percentiles; tests use it to assert the format
// round-trips.
func ParsePrometheus(text string) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: parse line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabelPairs(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return s, fmt.Errorf("bad label pair %q", pair)
			}
			unq, err := strconv.Unquote(v)
			if err != nil {
				return s, fmt.Errorf("bad label value %q: %w", v, err)
			}
			s.Labels[k] = unq
		}
		rest = rest[end+1:]
	}
	val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = val
	return s, nil
}

// splitLabelPairs splits k1="v1",k2="v2" on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			b.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}

// QuantileFromSamples estimates a latency quantile from scraped
// <name>_bucket samples matching the given label filter (all filter
// pairs must match; the le label belongs to the estimator). This is how
// daisbench turns a /metrics scrape into server-side percentiles.
func QuantileFromSamples(samples []Sample, name string, filter map[string]string, q float64) time.Duration {
	bounds, cum := bucketsFromSamples(samples, name, filter)
	if len(cum) == 0 {
		return 0
	}
	counts := make([]uint64, len(cum))
	var prev uint64
	for i, c := range cum {
		counts[i] = c - prev
		prev = c
	}
	return bucketQuantile(bounds, counts, q)
}

// bucketsFromSamples collects the (le, cumulative count) pairs of a
// histogram's _bucket samples matching the filter, sorted by bound.
func bucketsFromSamples(samples []Sample, name string, filter map[string]string) (bounds []float64, cum []uint64) {
	type bucket struct {
		le  float64
		cum uint64
	}
	var buckets []bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" || !labelsMatch(s.Labels, filter) {
			continue
		}
		le := math.Inf(1)
		if s.Labels["le"] != "+Inf" {
			v, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				continue
			}
			le = v
		}
		buckets = append(buckets, bucket{le: le, cum: uint64(s.Value)})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for _, b := range buckets {
		if !math.IsInf(b.le, 1) {
			bounds = append(bounds, b.le)
		}
		cum = append(cum, b.cum)
	}
	return bounds, cum
}

// DeltaQuantile estimates a latency quantile from the growth of a
// histogram between two scrapes: the cumulative bucket counts of the
// before scrape are subtracted from the after scrape, and the quantile
// is estimated over the difference. The open-loop load harness uses it
// to report per-sweep-step server-side percentiles from the endpoint's
// monotonically growing /metrics histograms. A series absent from the
// before scrape counts as zero (the histogram was born mid-window).
func DeltaQuantile(before, after []Sample, name string, filter map[string]string, q float64) time.Duration {
	bounds, cumAfter := bucketsFromSamples(after, name, filter)
	if len(cumAfter) == 0 {
		return 0
	}
	boundsBefore, cumBefore := bucketsFromSamples(before, name, filter)
	counts := make([]uint64, len(cumAfter))
	var prevA, prevB uint64
	for i := range cumAfter {
		a := cumAfter[i] - prevA
		prevA = cumAfter[i]
		var b uint64
		if i < len(cumBefore) && i <= len(boundsBefore) {
			b = cumBefore[i] - prevB
			prevB = cumBefore[i]
		}
		if a >= b {
			counts[i] = a - b
		}
	}
	return bucketQuantile(bounds, counts, q)
}

// DeltaCount reports the growth of a counter between two scrapes
// (CountFromSamples(after) − CountFromSamples(before), floored at 0).
func DeltaCount(before, after []Sample, name string, filter map[string]string) float64 {
	d := CountFromSamples(after, name, filter) - CountFromSamples(before, name, filter)
	if d < 0 {
		return 0
	}
	return d
}

// CountFromSamples sums the values of samples with the given name whose
// labels match the filter (ignoring extra labels such as le).
func CountFromSamples(samples []Sample, name string, filter map[string]string) float64 {
	var total float64
	for _, s := range samples {
		if s.Name == name && labelsMatch(s.Labels, filter) {
			total += s.Value
		}
	}
	return total
}

func labelsMatch(labels, filter map[string]string) bool {
	for k, v := range filter {
		if labels[k] != v {
			return false
		}
	}
	return true
}
