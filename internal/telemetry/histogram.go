package telemetry

import (
	"sync/atomic"
	"time"
)

// LatencyBuckets returns the standard fixed log-scale latency bounds
// (plus the implicit +Inf overflow bucket): a fine region growing ×1.25
// from 20µs to ~1ms, then doubling up to ~18s. The original uniform
// doubling from 50µs was tuned for p50/p99; its 100% relative bucket
// width made p999 estimates of sub-millisecond operations (where the
// whole distribution lands in three or four buckets) off by up to 2x.
// The ×1.25 fine region bounds the interpolation error at ≤25% exactly
// where the in-process request path lives, while the coarse doubling
// region keeps the total bucket count — and therefore per-observation
// cost and exposition size — fixed at 33.
func LatencyBuckets() []float64 {
	var out []float64
	b := 20e-6
	for b < 1e-3 {
		out = append(out, b)
		b *= 1.25
	}
	for b < 30 {
		out = append(out, b)
		b *= 2
	}
	return out
}

// HistogramVec is a labelled family of fixed-bucket histograms sharing
// one set of upper bounds.
type HistogramVec struct {
	family
	bounds []float64
}

// Histogram is one latency distribution: cumulative-free per-bucket
// atomic counts plus a count and a nanosecond sum. Observations are
// lock-free; Snapshot assembles the cumulative view Prometheus expects.
type Histogram struct {
	bounds   []float64
	buckets  []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count    atomic.Uint64
	sumNanos atomic.Int64
	labels   []string
}

// With returns the histogram for a label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.child(values, func(vals []string) any {
		return &Histogram{bounds: v.bounds, buckets: make([]atomic.Uint64, len(v.bounds)+1), labels: vals}
	}).(*Histogram)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// snapshotBuckets returns the per-bucket counts read once.
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the owning bucket; observations in the +Inf
// bucket clamp to the largest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	return bucketQuantile(h.bounds, h.snapshotBuckets(), q)
}

// bucketQuantile is the shared quantile estimator over per-bucket
// (non-cumulative) counts; the daisbench scraper reuses it on parsed
// /metrics samples.
func bucketQuantile(bounds []float64, counts []uint64, q float64) time.Duration {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range counts {
		if seen+c < rank {
			seen += c
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: clamp to the largest finite bound.
			return secondsToDuration(bounds[len(bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := float64(rank-seen) / float64(c)
		return secondsToDuration(lo + (hi-lo)*frac)
	}
	return secondsToDuration(bounds[len(bounds)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
