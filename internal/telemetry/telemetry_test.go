package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"dais/internal/core"
	"dais/internal/soap"
	"dais/internal/xmlutil"
)

func TestCounterAndGaugeVec(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounterVec("c_total", "help", "op")
	c.With("a").Inc()
	c.With("a").Add(2)
	c.With("b").Inc()
	if got := c.With("a").Value(); got != 3 {
		t.Fatalf("counter a = %d", got)
	}

	g := reg.NewGaugeVec("g", "help", "side")
	g.With("x").Inc()
	g.With("x").Inc()
	g.With("x").Dec()
	g.With("y").Set(7)
	if got := g.With("x").Value(); got != 1 {
		t.Fatalf("gauge x = %d", got)
	}

	samples := reg.Snapshot()
	if v := CountFromSamples(samples, "c_total", map[string]string{"op": "a"}); v != 3 {
		t.Fatalf("snapshot counter a = %v", v)
	}
	if v := CountFromSamples(samples, "g", map[string]string{"side": "y"}); v != 7 {
		t.Fatalf("snapshot gauge y = %v", v)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounterVec("c_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity must panic")
		}
	}()
	c.With("only-one")
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogramVec("lat_seconds", "", LatencyBuckets(), "op").With("q")
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Minute) // lands in the +Inf overflow bucket
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() < 100*time.Millisecond {
		t.Fatalf("sum = %v", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	// The overflow observation clamps to the largest finite bound.
	bounds := LatencyBuckets()
	if q := h.Quantile(1); q != secondsToDuration(bounds[len(bounds)-1]) {
		t.Fatalf("p100 = %v", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q=0 gave %v", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// while snapshots run concurrently; run with -race it proves the
// lock-free observation path.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewHistogramVec("lat_seconds", "", LatencyBuckets(), "op")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := vec.With("hammer")
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*i+1) * time.Microsecond)
			}
		}(g)
	}
	for vec.With("hammer").Count() < goroutines*perG {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := vec.With("hammer").Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var bucketSum uint64
	for _, n := range vec.With("hammer").snapshotBuckets() {
		bucketSum += n
	}
	if bucketSum != goroutines*perG {
		t.Fatalf("bucket sum = %d", bucketSum)
	}
}

func TestExposeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterVec("rt_total", "a counter", "op", "code").With("Query", "ok").Add(5)
	reg.NewGaugeVec("rt_gauge", "a gauge", "side").With("server").Set(2)
	h := reg.NewHistogramVec("rt_seconds", "a histogram", LatencyBuckets(), "op").With("Query")
	for i := 0; i < 50; i++ {
		h.Observe(750 * time.Microsecond)
	}
	reg.RegisterCollector(func(emit func(Sample)) {
		emit(Sample{Name: "rt_live", Labels: map[string]string{"kind": "SQL"}, Value: 3})
		emit(Sample{Name: "rt_dead_total", Labels: map[string]string{"kind": "SQL"}, Value: 4})
	})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE rt_total counter",
		"# HELP rt_seconds a histogram",
		`rt_total{code="ok",op="Query"} 5`,
		`rt_live{kind="SQL"} 3`,
		"# TYPE rt_live gauge",
		"# TYPE rt_dead_total counter",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	parsed, err := ParsePrometheus(text)
	if err != nil {
		t.Fatal(err)
	}
	if v := CountFromSamples(parsed, "rt_total", map[string]string{"op": "Query"}); v != 5 {
		t.Fatalf("parsed counter = %v", v)
	}
	if v := CountFromSamples(parsed, "rt_seconds_count", map[string]string{"op": "Query"}); v != 50 {
		t.Fatalf("parsed histogram count = %v", v)
	}
	// Quantiles estimated from the scrape match the live histogram.
	scraped := QuantileFromSamples(parsed, "rt_seconds", map[string]string{"op": "Query"}, 0.5)
	if live := h.Quantile(0.5); scraped != live {
		t.Fatalf("scraped p50 %v != live p50 %v", scraped, live)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	if _, err := ParsePrometheus("not a sample line"); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ParsePrometheus(`x{a="unterminated} 1`); err == nil {
		t.Fatal("want label error")
	}
}

func TestTracerRingAndSlowLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(4, 10*time.Millisecond, logger)
	for i := 0; i < 10; i++ {
		tr.Record(Span{RequestID: string(rune('a' + i)), Duration: time.Millisecond})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d spans", len(recent))
	}
	if recent[0].RequestID != "j" || recent[3].RequestID != "g" {
		t.Fatalf("newest-first order broken: %+v", recent)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast spans must not hit the slow log: %s", buf.String())
	}
	tr.Record(Span{RequestID: "slowpoke", Duration: time.Second, Op: "GenericQuery"})
	if out := buf.String(); !strings.Contains(out, "slow call") || !strings.Contains(out, "slowpoke") {
		t.Fatalf("slow log = %q", out)
	}
	// A nil tracer records nothing and does not panic.
	var nilTracer *Tracer
	nilTracer.Record(Span{})
}

// TestInterceptorCompositionOrder pins the chain contract: request-ID
// outermost, telemetry next, user interceptors (here a server timeout)
// inside — so the metrics observe the fault the inner deadline causes
// and the span carries the adopted request ID.
func TestInterceptorCompositionOrder(t *testing.T) {
	obs := NewObserver(WithSlowThreshold(0))
	slowHandler := func(ctx context.Context, action string, env *soap.Envelope) (*soap.Envelope, error) {
		<-ctx.Done()
		return nil, &core.RequestTimeoutFault{Detail: "deadline expired"}
	}
	h := soap.Chain(slowHandler,
		soap.ServerRequestID(),
		obs.ServerInterceptor(),
		soap.ServerTimeout(5*time.Millisecond),
	)
	env := soap.NewEnvelope(xmlutil.NewElement("urn:test", "Ping"))
	_, err := h(context.Background(), "urn:test/Ping", env)
	if core.FaultName(err) != "RequestTimeoutFault" {
		t.Fatalf("err = %v", err)
	}

	// The telemetry interceptor saw the typed fault from the inner
	// timeout, under the unknown-op label (the action is not catalogued).
	if got := obs.Requests.With(SideServer, CodeUnknown, CodeUnknown, "RequestTimeoutFault").Value(); got != 1 {
		t.Fatalf("request counter = %d", got)
	}
	if got := obs.Faults.With(SideServer, CodeUnknown, "RequestTimeoutFault").Value(); got != 1 {
		t.Fatalf("fault counter = %d", got)
	}
	if got := obs.InFlight.With(SideServer).Value(); got != 0 {
		t.Fatalf("in-flight did not return to zero: %d", got)
	}
	spans := obs.Tracer.Recent(1)
	if len(spans) != 1 || spans[0].Code != "RequestTimeoutFault" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].RequestID == "" {
		t.Fatal("span missing the request ID adopted by the outer interceptor")
	}
	if spans[0].Duration < 5*time.Millisecond {
		t.Fatalf("span duration %v shorter than the inner deadline", spans[0].Duration)
	}
}

func TestFaultCodeClassification(t *testing.T) {
	detail := xmlutil.NewElement(core.NSDAI, "InvalidResourceNameFault")
	withDetail := soap.ClientFault("boom")
	withDetail.Detail = detail
	cases := []struct {
		err  error
		want string
	}{
		{nil, CodeOK},
		{&core.InvalidLanguageFault{Language: "x"}, "InvalidLanguageFault"},
		{withDetail, "InvalidResourceNameFault"},
		{soap.ServerFault("plain"), "Server"},
		{context.DeadlineExceeded, CodeError},
	}
	for _, c := range cases {
		if got := FaultCode(c.err); got != c.want {
			t.Fatalf("FaultCode(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	called := false
	h := soap.Chain(func(ctx context.Context, action string, env *soap.Envelope) (*soap.Envelope, error) {
		called = true
		return env, nil
	}, o.ServerInterceptor())
	if _, err := h(context.Background(), "urn:x", soap.NewEnvelope(xmlutil.NewElement("urn:x", "P"))); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("nil observer must pass through")
	}
	o.ExchangeObserver(SideServer)("urn:x", 10, 20) // must not panic
}

func TestExchangeObserverCountsBytes(t *testing.T) {
	obs := NewObserver()
	f := obs.ExchangeObserver(SideServer)
	f("http://www.ggf.org/namespaces/2005/12/WS-DAI/GenericQuery", 120, 340)
	f("http://www.ggf.org/namespaces/2005/12/WS-DAI/GenericQuery", 10, 0)
	in := obs.Bytes.With(SideServer, DirIn, "GenericQuery").Value()
	out := obs.Bytes.With(SideServer, DirOut, "GenericQuery").Value()
	if in != 130 || out != 340 {
		t.Fatalf("bytes in/out = %d/%d", in, out)
	}
}
