package telemetry

import (
	"context"
	"time"

	"dais/internal/core"
	"dais/internal/ops"
	"dais/internal/soap"
)

// ClientInterceptor returns a soap.Interceptor recording consumer-side
// request counts, in-flight gauge, latency distribution, fault tallies
// and a span per call. Install it after the request-ID interceptor so
// spans carry the correlation key.
func (o *Observer) ClientInterceptor() soap.Interceptor { return o.interceptor(SideClient) }

// ServerInterceptor is the service-side counterpart. The endpoint
// installs it between the request-ID interceptor (outermost, so spans
// see the adopted ID) and any user-supplied interceptors such as
// ServerTimeout (inner, so the metrics observe the deadline and fault
// behaviour the consumer observes).
func (o *Observer) ServerInterceptor() soap.Interceptor { return o.interceptor(SideServer) }

func (o *Observer) interceptor(side string) soap.Interceptor {
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		if o == nil {
			return next(ctx, action, env)
		}
		op, class := callLabels(ctx, action)
		inFlight := o.InFlight.With(side)
		inFlight.Inc()
		start := time.Now()
		resp, err := next(ctx, action, env)
		dur := time.Since(start)
		inFlight.Dec()

		code := FaultCode(err)
		o.Requests.With(side, op, class, code).Inc()
		// The latency histogram is a success distribution: faulted
		// exchanges (admission sheds, timeouts, injected failures) are
		// tallied in Requests and Faults but kept out of the quantiles,
		// so an overloaded endpoint's fast 503s cannot masquerade as a
		// latency improvement in the capacity-curve SLO check.
		if err == nil {
			o.Latency.With(side, op).Observe(dur)
		} else {
			o.Faults.With(side, op, code).Inc()
		}
		o.Tracer.Record(Span{
			RequestID:    requestID(ctx, env),
			Side:         side,
			Action:       action,
			Op:           op,
			AbstractName: abstractNameOf(env),
			Start:        start,
			Duration:     dur,
			Code:         code,
		})
		return resp, err
	}
}

// ExchangeObserver adapts the observer to the soap byte-observer hook:
// it counts serialised envelope bytes in and out, labelled by
// operation. The transport layer reports lengths it already has, so
// nothing is re-marshalled on the hot path.
func (o *Observer) ExchangeObserver(side string) func(action string, bytesIn, bytesOut int) {
	return func(action string, bytesIn, bytesOut int) {
		if o == nil {
			return
		}
		op := ops.OpOf(action)
		if bytesIn > 0 {
			o.Bytes.With(side, DirIn, op).Add(int64(bytesIn))
		}
		if bytesOut > 0 {
			o.Bytes.With(side, DirOut, op).Add(int64(bytesOut))
		}
	}
}

// callLabels resolves the operation and interface-class labels for an
// exchange: the CallInfo the client attaches to the context wins, then
// the catalog lookup by action URI, then a bounded unknown fallback.
func callLabels(ctx context.Context, action string) (op, class string) {
	if info, ok := ops.CallInfoFromContext(ctx); ok {
		return info.Op, info.Class
	}
	if spec, ok := ops.ByAction(action); ok {
		return spec.Op, spec.Class
	}
	// Unrecognised actions share one label value so a scanner probing
	// random URIs cannot blow up the label cardinality.
	return CodeUnknown, CodeUnknown
}

// FaultCode classifies an exchange error into the bounded fault-code
// label: "ok" for success, the typed DAIS fault name when one is
// identifiable (from the error value or the structured fault detail),
// the SOAP fault code otherwise, and "error" for untyped failures.
func FaultCode(err error) string {
	if err == nil {
		return CodeOK
	}
	if name := core.FaultName(err); name != "" {
		return name
	}
	if f, ok := err.(*soap.Fault); ok {
		if f.Detail != nil && f.Detail.Name.Local != "" {
			return f.Detail.Name.Local
		}
		if f.Code != "" {
			return f.Code
		}
	}
	return CodeError
}

// requestID extracts the correlation key: the context copy stamped by
// the request-ID interceptors, falling back to the envelope header.
func requestID(ctx context.Context, env *soap.Envelope) string {
	if id := soap.RequestIDFromContext(ctx); id != "" {
		return id
	}
	return soap.RequestIDOf(env)
}

// abstractNameOf probes the request body for the mandatory WS-DAI
// DataResourceAbstractName child ("" for service-level operations).
func abstractNameOf(env *soap.Envelope) string {
	if env == nil {
		return ""
	}
	body := env.BodyEntry()
	if body == nil {
		return ""
	}
	return body.FindText(core.NSDAI, "DataResourceAbstractName")
}
