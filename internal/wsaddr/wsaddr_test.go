package wsaddr

import (
	"regexp"
	"testing"

	"dais/internal/soap"
	"dais/internal/xmlutil"
)

const nsDAI = "http://www.ggf.org/namespaces/2005/12/WS-DAI"

func TestEPRRoundTrip(t *testing.T) {
	epr := NewEPR("http://example.org/data")
	name := xmlutil.NewElement(nsDAI, "DataResourceAbstractName")
	name.SetText("urn:dais:resource:42")
	epr.AddReferenceParameter(name)
	epr.Metadata = append(epr.Metadata, xmlutil.NewElement("urn:m", "PortType"))

	el := epr.Element(nsDAI, "DataResourceAddress")
	if el.Name.Local != "DataResourceAddress" {
		t.Fatalf("element name = %v", el.Name)
	}
	got, err := ParseEPR(el)
	if err != nil {
		t.Fatal(err)
	}
	if got.Address != "http://example.org/data" {
		t.Fatalf("address = %q", got.Address)
	}
	rp := got.ReferenceParameter(nsDAI, "DataResourceAbstractName")
	if rp == nil || rp.Text() != "urn:dais:resource:42" {
		t.Fatalf("refparam = %v", rp)
	}
	if len(got.Metadata) != 1 {
		t.Fatalf("metadata = %d", len(got.Metadata))
	}
}

func TestEPRThroughXMLSerialisation(t *testing.T) {
	epr := NewEPR("http://svc/endpoint")
	p := xmlutil.NewElement(nsDAI, "DataResourceAbstractName")
	p.SetText("urn:r1")
	epr.AddReferenceParameter(p)

	el := epr.Element(nsDAI, "Reference")
	re, err := xmlutil.ParseString(xmlutil.MarshalString(el))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseEPR(re)
	if err != nil {
		t.Fatal(err)
	}
	if got.Address != epr.Address {
		t.Fatalf("address = %q", got.Address)
	}
	if got.ReferenceParameter(nsDAI, "DataResourceAbstractName").Text() != "urn:r1" {
		t.Fatal("reference parameter lost in serialisation")
	}
}

func TestParseEPRErrors(t *testing.T) {
	if _, err := ParseEPR(nil); err == nil {
		t.Fatal("nil should error")
	}
	if _, err := ParseEPR(xmlutil.NewElement("urn:x", "EPR")); err == nil {
		t.Fatal("missing Address should error")
	}
}

func TestMessageIDFormat(t *testing.T) {
	re := regexp.MustCompile(`^urn:uuid:[0-9a-f]{8}-[0-9a-f]{4}-4[0-9a-f]{3}-[89ab][0-9a-f]{3}-[0-9a-f]{12}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewMessageID()
		if !re.MatchString(id) {
			t.Fatalf("bad message id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestHeadersAttachExtract(t *testing.T) {
	env := soap.NewEnvelope(xmlutil.NewElement("urn:t", "Op"))
	refParam := xmlutil.NewElement(nsDAI, "DataResourceAbstractName")
	refParam.SetText("urn:r9")
	h := &MessageHeaders{
		To:                  "http://svc",
		Action:              "urn:act",
		MessageID:           NewMessageID(),
		ReplyTo:             NewEPR(AnonymousURI),
		ReferenceParameters: []*xmlutil.Element{refParam},
	}
	h.Attach(env)

	// Simulate the wire.
	parsed, err := soap.ParseEnvelope(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got := FromEnvelope(parsed)
	if got.To != "http://svc" || got.Action != "urn:act" || got.MessageID != h.MessageID {
		t.Fatalf("headers = %+v", got)
	}
	if got.ReplyTo == nil || got.ReplyTo.Address != AnonymousURI {
		t.Fatalf("replyTo = %+v", got.ReplyTo)
	}
	if len(got.ReferenceParameters) != 1 || got.ReferenceParameters[0].Text() != "urn:r9" {
		t.Fatalf("refparams = %+v", got.ReferenceParameters)
	}
}

func TestRequestHeaders(t *testing.T) {
	epr := NewEPR("http://svc/data")
	p := xmlutil.NewElement(nsDAI, "DataResourceAbstractName")
	p.SetText("urn:abc")
	epr.AddReferenceParameter(p)

	h := RequestHeaders(epr, "urn:dais/SQLExecute")
	if h.To != "http://svc/data" {
		t.Fatalf("To = %q", h.To)
	}
	if h.Action != "urn:dais/SQLExecute" {
		t.Fatalf("Action = %q", h.Action)
	}
	if h.MessageID == "" {
		t.Fatal("MessageID empty")
	}
	if h.ReplyTo.Address != AnonymousURI {
		t.Fatal("ReplyTo should be anonymous")
	}
	if len(h.ReferenceParameters) != 1 {
		t.Fatal("reference parameters not copied")
	}
	// Mutating the header copy must not affect the EPR.
	h.ReferenceParameters[0].SetText("changed")
	if epr.ReferenceParameters[0].Text() != "urn:abc" {
		t.Fatal("RequestHeaders aliases EPR reference parameters")
	}
}

func TestReplyHeaders(t *testing.T) {
	req := &MessageHeaders{MessageID: "urn:uuid:1"}
	rep := ReplyHeaders(req, "urn:resp")
	if rep.RelatesTo != "urn:uuid:1" {
		t.Fatalf("RelatesTo = %q", rep.RelatesTo)
	}
	if rep.Action != "urn:resp" || rep.MessageID == "" {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestEmptyHeadersSkipped(t *testing.T) {
	env := soap.NewEnvelope(xmlutil.NewElement("urn:t", "Op"))
	(&MessageHeaders{Action: "urn:a"}).Attach(env)
	if len(env.Header) != 1 {
		t.Fatalf("header count = %d, want 1 (empty fields skipped)", len(env.Header))
	}
}
