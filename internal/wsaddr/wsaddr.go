// Package wsaddr implements the parts of W3C WS-Addressing 1.0 that the
// DAIS specifications rely on: endpoint references (EPRs) with
// reference parameters, and the message addressing headers
// (To/Action/MessageID/RelatesTo/ReplyTo) carried in SOAP headers.
//
// An indirect-access factory operation returns an EPR whose reference
// parameters contain the derived data resource's abstract name; a
// consumer (or a third party it hands the EPR to) then targets that
// resource by echoing the reference parameters into its request
// headers. DAIS additionally mandates the abstract name in the SOAP
// body, which the service layer enforces.
package wsaddr

import (
	"crypto/rand"
	"fmt"

	"dais/internal/soap"
	"dais/internal/xmlutil"
)

// Namespace URIs.
const (
	NS = "http://www.w3.org/2005/08/addressing"

	// AnonymousURI is the WS-Addressing anonymous endpoint, denoting
	// "reply on the transport back-channel".
	AnonymousURI = NS + "/anonymous"
	// NoneURI denotes "send no reply".
	NoneURI = NS + "/none"
)

// EndpointReference identifies a web service endpoint plus optional
// reference parameters that the endpoint requires echoed on every
// message addressed through the EPR.
type EndpointReference struct {
	Address             string
	ReferenceParameters []*xmlutil.Element
	Metadata            []*xmlutil.Element
}

// NewEPR returns an EPR for the given address.
func NewEPR(address string) *EndpointReference {
	return &EndpointReference{Address: address}
}

// AddReferenceParameter appends a reference parameter element.
func (e *EndpointReference) AddReferenceParameter(p *xmlutil.Element) {
	e.ReferenceParameters = append(e.ReferenceParameters, p)
}

// ReferenceParameter returns the first reference parameter with the
// given name, or nil.
func (e *EndpointReference) ReferenceParameter(space, local string) *xmlutil.Element {
	for _, p := range e.ReferenceParameters {
		if p.Name.Local == local && (space == "" || p.Name.Space == space) {
			return p
		}
	}
	return nil
}

// Element renders the EPR with the given element name (DAIS responses
// embed EPRs under names like DataResourceAddress).
func (e *EndpointReference) Element(space, local string) *xmlutil.Element {
	el := xmlutil.NewElement(space, local)
	el.AddText(NS, "Address", e.Address)
	if len(e.ReferenceParameters) > 0 {
		rp := el.Add(NS, "ReferenceParameters")
		for _, p := range e.ReferenceParameters {
			rp.AppendChild(p.Clone())
		}
	}
	if len(e.Metadata) > 0 {
		md := el.Add(NS, "Metadata")
		for _, m := range e.Metadata {
			md.AppendChild(m.Clone())
		}
	}
	return el
}

// ParseEPR decodes an EPR from an element produced by Element (or any
// WS-Addressing EndpointReferenceType).
func ParseEPR(el *xmlutil.Element) (*EndpointReference, error) {
	if el == nil {
		return nil, fmt.Errorf("wsaddr: nil EPR element")
	}
	addr := el.Find(NS, "Address")
	if addr == nil {
		return nil, fmt.Errorf("wsaddr: EPR %s missing Address", el.Name)
	}
	epr := &EndpointReference{Address: addr.Text()}
	if rp := el.Find(NS, "ReferenceParameters"); rp != nil {
		for _, p := range rp.ChildElements() {
			epr.ReferenceParameters = append(epr.ReferenceParameters, p.Clone())
		}
	}
	if md := el.Find(NS, "Metadata"); md != nil {
		for _, m := range md.ChildElements() {
			epr.Metadata = append(epr.Metadata, m.Clone())
		}
	}
	return epr, nil
}

// MessageHeaders is the set of WS-Addressing message addressing
// properties DAIS messages use.
type MessageHeaders struct {
	To        string
	Action    string
	MessageID string
	RelatesTo string
	ReplyTo   *EndpointReference
	// ReferenceParameters carries EPR reference parameters echoed back
	// to the service (each is marked with wsa:IsReferenceParameter).
	ReferenceParameters []*xmlutil.Element
}

// NewMessageID generates a unique urn:uuid message identifier.
func NewMessageID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("wsaddr: rand: " + err.Error())
	}
	// RFC 4122 version 4 variant bits.
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("urn:uuid:%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Attach adds the headers to a SOAP envelope.
func (h *MessageHeaders) Attach(env *soap.Envelope) {
	add := func(local, text string) {
		if text == "" {
			return
		}
		el := xmlutil.NewElement(NS, local)
		el.SetText(text)
		env.AddHeader(el)
	}
	add("To", h.To)
	add("Action", h.Action)
	add("MessageID", h.MessageID)
	add("RelatesTo", h.RelatesTo)
	if h.ReplyTo != nil {
		env.AddHeader(h.ReplyTo.Element(NS, "ReplyTo"))
	}
	for _, p := range h.ReferenceParameters {
		cp := p.Clone()
		cp.SetAttr(NS, "IsReferenceParameter", "true")
		env.AddHeader(cp)
	}
}

// FromEnvelope extracts the addressing headers from a SOAP envelope.
// Unknown headers marked IsReferenceParameter are collected into
// ReferenceParameters.
func FromEnvelope(env *soap.Envelope) *MessageHeaders {
	h := &MessageHeaders{}
	for _, el := range env.Header {
		if el.Name.Space != NS {
			if el.AttrValue(NS, "IsReferenceParameter") == "true" {
				h.ReferenceParameters = append(h.ReferenceParameters, el.Clone())
			}
			continue
		}
		switch el.Name.Local {
		case "To":
			h.To = el.Text()
		case "Action":
			h.Action = el.Text()
		case "MessageID":
			h.MessageID = el.Text()
		case "RelatesTo":
			h.RelatesTo = el.Text()
		case "ReplyTo":
			if epr, err := ParseEPR(el); err == nil {
				h.ReplyTo = epr
			}
		default:
			if el.AttrValue(NS, "IsReferenceParameter") == "true" {
				h.ReferenceParameters = append(h.ReferenceParameters, el.Clone())
			}
		}
	}
	return h
}

// RequestHeaders builds the standard request header set for a message
// addressed to the given EPR with the given action: To from the EPR's
// address, a fresh MessageID, anonymous ReplyTo, and the EPR's
// reference parameters echoed.
func RequestHeaders(epr *EndpointReference, action string) *MessageHeaders {
	h := &MessageHeaders{
		To:        epr.Address,
		Action:    action,
		MessageID: NewMessageID(),
		ReplyTo:   NewEPR(AnonymousURI),
	}
	for _, p := range epr.ReferenceParameters {
		h.ReferenceParameters = append(h.ReferenceParameters, p.Clone())
	}
	return h
}

// ReplyHeaders builds response headers relating to the given request.
func ReplyHeaders(req *MessageHeaders, action string) *MessageHeaders {
	return &MessageHeaders{
		Action:    action,
		MessageID: NewMessageID(),
		RelatesTo: req.MessageID,
	}
}
