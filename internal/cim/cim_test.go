package cim

import (
	"strings"
	"testing"

	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

func testEngine(t *testing.T) *sqlengine.Engine {
	t.Helper()
	e := sqlengine.New("hr")
	e.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64) NOT NULL, code VARCHAR(8) UNIQUE)`)
	e.MustExec(`CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(32))`)
	e.MustExec(`CREATE INDEX idx_name ON emp (name)`)
	e.MustExec(`INSERT INTO emp VALUES (1, 'ann', 'A'), (2, 'bob', 'B')`)
	return e
}

func TestDescribeStructure(t *testing.T) {
	e := testEngine(t)
	desc := Describe(e.Database())
	out := xmlutil.MarshalString(desc)
	for _, want := range []string{
		"CIM_CommonDatabase", "CIM_DatabaseSchema", "CIM_Table",
		"CIM_Column", "CIM_Index", "OrdinalPosition", "idx_name",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering", want)
		}
	}
	// It must parse back and be walkable.
	re, err := xmlutil.ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summary(re)
	if sum["emp"] != 3 || sum["dept"] != 2 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestDescribeRowCountsAndKeys(t *testing.T) {
	e := testEngine(t)
	desc := Describe(e.Database())
	out := xmlutil.MarshalString(desc)
	if !strings.Contains(out, ">2<") { // emp RowCount
		t.Errorf("row count missing:\n%s", out)
	}
	if !strings.Contains(out, "PRIMARY") || !strings.Contains(out, "UNIQUE") {
		t.Errorf("key types missing:\n%s", out)
	}
	if !strings.Contains(out, "IsNullable") {
		t.Error("nullability missing")
	}
}

func TestTableDescription(t *testing.T) {
	cols := []sqlengine.ResultColumn{
		{Name: "a", Type: sqlengine.TypeInteger, Table: "t"},
		{Name: "b", Type: sqlengine.TypeVarchar},
	}
	desc := TableDescription("derived", cols)
	sum := Summary(desc)
	if sum["derived"] != 2 {
		t.Fatalf("summary = %v", sum)
	}
	out := xmlutil.MarshalString(desc)
	if !strings.Contains(out, "SourceTable") {
		t.Error("source table missing")
	}
}

func TestDescribeEmptyDatabase(t *testing.T) {
	e := sqlengine.New("empty")
	desc := Describe(e.Database())
	if len(Summary(desc)) != 0 {
		t.Fatal("unexpected tables")
	}
	if desc.AttrValue("", "class") != "CIM_CommonDatabase" {
		t.Fatal("wrong root class")
	}
}

func TestDescribeIncludesViews(t *testing.T) {
	e := testEngine(t)
	e.MustExec(`CREATE VIEW highpay AS SELECT name FROM emp`)
	out := xmlutil.MarshalString(Describe(e.Database()))
	if !strings.Contains(out, "CIM_View") || !strings.Contains(out, "highpay") {
		t.Errorf("view missing from rendering")
	}
}
