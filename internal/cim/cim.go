// Package cim renders relational catalog metadata in a CIM-style XML
// dialect.
//
// The paper (§2.3, §4.2) records that the DAIS-WG worked with the DMTF
// Database Working Group to extend the Common Information Model with
// relational metadata from the SQL standard, and that WS-DAIR's
// CIMDescription property is "a content holder for an XML rendering of
// CIM for relational database". The DMTF rendering was unfinished at
// publication time, so this package provides a faithful CIM_* -style
// rendering (class/instance/property structure mirroring CIM-XML) over
// the sqlengine catalog.
package cim

import (
	"fmt"

	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

// NS is the namespace of the rendering.
const NS = "http://schemas.dmtf.org/wbem/wscim/1/cim-schema/2/database"

// Describe renders the database catalog as a CIM instance tree:
// CIM_CommonDatabase with CIM_DatabaseSchema children containing
// CIM_Table, CIM_Column and CIM_Index instances.
func Describe(db *sqlengine.Database) *xmlutil.Element {
	root := instance(NS, "CIM_CommonDatabase")
	prop(root, "Name", db.Name())
	prop(root, "CreationClassName", "CIM_CommonDatabase")

	schema := root.Add(NS, "Instance")
	schema.SetAttr("", "class", "CIM_DatabaseSchema")
	prop(schema, "Name", "public")

	indexByTable := map[string][]sqlengine.IndexInfo{}
	for _, ix := range db.Indexes() {
		indexByTable[ix.Table] = append(indexByTable[ix.Table], ix)
	}

	for _, tname := range db.TableNames() {
		cols, err := db.TableSchema(tname)
		if err != nil {
			continue // table dropped concurrently; skip
		}
		te := schema.Add(NS, "Instance")
		te.SetAttr("", "class", "CIM_Table")
		prop(te, "Name", tname)
		if n, err := db.TableRowCount(tname); err == nil {
			prop(te, "RowCount", fmt.Sprintf("%d", n))
		}
		for i, c := range cols {
			ce := te.Add(NS, "Instance")
			ce.SetAttr("", "class", "CIM_Column")
			prop(ce, "Name", c.Name)
			prop(ce, "OrdinalPosition", fmt.Sprintf("%d", i+1))
			prop(ce, "DataType", c.Type.String())
			prop(ce, "IsNullable", boolStr(!c.NotNull))
			if c.PrimaryKey {
				prop(ce, "KeyType", "PRIMARY")
			} else if c.Unique {
				prop(ce, "KeyType", "UNIQUE")
			}
		}
		for _, ix := range indexByTable[tname] {
			ie := te.Add(NS, "Instance")
			ie.SetAttr("", "class", "CIM_Index")
			prop(ie, "Name", ix.Name)
			prop(ie, "Column", ix.Column)
			prop(ie, "IsUnique", boolStr(ix.Unique))
		}
	}
	for _, vname := range db.ViewNames() {
		ve := schema.Add(NS, "Instance")
		ve.SetAttr("", "class", "CIM_View")
		prop(ve, "Name", vname)
	}
	return root
}

// TableDescription describes one result-set shape (used for derived
// data resources whose "schema" is the query's projection).
func TableDescription(name string, cols []sqlengine.ResultColumn) *xmlutil.Element {
	te := instance(NS, "CIM_Table")
	prop(te, "Name", name)
	for i, c := range cols {
		ce := te.Add(NS, "Instance")
		ce.SetAttr("", "class", "CIM_Column")
		prop(ce, "Name", c.Name)
		prop(ce, "OrdinalPosition", fmt.Sprintf("%d", i+1))
		prop(ce, "DataType", c.Type.String())
		if c.Table != "" {
			prop(ce, "SourceTable", c.Table)
		}
	}
	return te
}

// Summary extracts a compact overview from a Describe rendering:
// table name -> column count. It demonstrates that the rendering is
// machine-consumable, and backs tests.
func Summary(desc *xmlutil.Element) map[string]int {
	out := map[string]int{}
	var walk func(e *xmlutil.Element)
	walk = func(e *xmlutil.Element) {
		if e.AttrValue("", "class") == "CIM_Table" {
			name := ""
			cols := 0
			for _, c := range e.ChildElements() {
				switch {
				case c.Name.Local == "Property" && c.AttrValue("", "name") == "Name":
					name = c.Text()
				case c.Name.Local == "Instance" && c.AttrValue("", "class") == "CIM_Column":
					cols++
				}
			}
			if name != "" {
				out[name] = cols
			}
		}
		for _, c := range e.ChildElements() {
			walk(c)
		}
	}
	walk(desc)
	return out
}

func instance(ns, class string) *xmlutil.Element {
	e := xmlutil.NewElement(ns, "Instance")
	e.SetAttr("", "class", class)
	return e
}

func prop(parent *xmlutil.Element, name, value string) {
	p := parent.Add(NS, "Property")
	p.SetAttr("", "name", name)
	p.SetText(value)
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
