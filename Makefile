GO ?= go

.PHONY: all build test race vet fmt check bench bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bitrot in bench code
# without paying for a real measurement run. CI runs this.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
