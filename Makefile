GO ?= go

.PHONY: all build test race vet fmt check bench bench-smoke chaos stream-chaos gw-chaos soak fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bitrot in bench code
# without paying for a real measurement run. CI runs this.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Fault-injection suite under the race detector: chaos byte-identity,
# breaker recovery, admission shedding and the short soak. CI runs this.
chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestChaos|TestAdmission' ./internal/service/
	$(GO) test -race -shuffle=on -count=1 -run 'TestChaosVector' ./internal/sqlengine/

# Streaming-pipeline chaos: chunked fetch of a spilled 100k-row
# resource through a fault-injecting transport, asserting byte-identical
# reassembly and retries visible in dais_retries_total. CI runs this.
stream-chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestStreamChaos|TestGetTuplesEdgeCasesOverHTTP' ./internal/service/

# Federation gateway chaos: kill one of three backends mid-flight
# under concurrent federated load with the race detector. Surviving
# shards must keep answering, scatters must never return partial
# rowsets, and the health board must converge. CI runs this.
gw-chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestGWChaos' ./internal/gateway/

# Long-form soak: 10k injected-failure exchanges with goroutine
# hygiene asserted afterwards. Not run in CI on every push.
soak:
	DAIS_SOAK=1 $(GO) test -race -count=1 -run TestChaosSoakGoroutineHygiene -v ./internal/service/

# Short fuzz pass over each parser target; scheduled CI runs this.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseEnvelope -fuzztime $(FUZZTIME) ./internal/soap/
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmlutil/
