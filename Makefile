GO ?= go

.PHONY: all build test race vet fmt check bench bench-smoke chaos stream-chaos gw-chaos load-smoke soak fuzz-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet race

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bitrot in bench code
# without paying for a real measurement run. CI runs this.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Fault-injection suite under the race detector: chaos byte-identity,
# breaker recovery, admission shedding, lifetime churn (100k registry
# cycles + 10k full-stack cycles racing the reaper) and the short soak.
# CI runs this. Scale the churn with DAIS_CHURN_CYCLES.
chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestChaos|TestAdmission' ./internal/service/
	$(GO) test -race -shuffle=on -count=1 -run 'TestChaosVector' ./internal/sqlengine/
	$(GO) test -race -shuffle=on -count=1 -run 'TestChurn' ./internal/wsrf/ ./internal/loadgen/

# Streaming-pipeline chaos: chunked fetch of a spilled 100k-row
# resource through a fault-injecting transport, asserting byte-identical
# reassembly and retries visible in dais_retries_total. CI runs this.
stream-chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestStreamChaos|TestGetTuplesEdgeCasesOverHTTP' ./internal/service/

# Federation gateway chaos: kill one of three backends mid-flight
# under concurrent federated load with the race detector. Surviving
# shards must keep answering, scatters must never return partial
# rowsets, and the health board must converge. CI runs this.
gw-chaos:
	$(GO) test -race -shuffle=on -count=1 -run 'TestGWChaos' ./internal/gateway/

# Open-loop load harness smoke: a short fixed-seed E17 sweep against
# both targets (single daisd + 3-backend daisgw) asserting every
# scenario class completes work, the churn invariants hold, and the
# report round-trips through the BENCH_E17.json schema. CI runs this.
load-smoke:
	$(GO) test -count=1 -run 'TestE17Smoke' -v ./internal/bench/

# Long-form soak: 10k injected-failure exchanges with goroutine
# hygiene asserted afterwards. Not run in CI on every push.
soak:
	DAIS_SOAK=1 $(GO) test -race -count=1 -run TestChaosSoakGoroutineHygiene -v ./internal/service/

# Short fuzz pass over each parser target; scheduled CI runs this.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseEnvelope -fuzztime $(FUZZTIME) ./internal/soap/
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/xmlutil/
