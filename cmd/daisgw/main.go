// Command daisgw is the DAIS federation gateway: one SOAP endpoint
// that shards data resources across N backend daisd endpoints. It owns
// the cluster-wide CoreResourceList, routes operations by
// DataResourceAbstractName (recorded placement first, consistent-hash
// ring otherwise), scatter-gathers alias-addressed GenericQuery calls
// across the member shards, and places alias factory operations on the
// least-loaded healthy backend. Every backend call runs through the
// resilient client: idempotency-gated retries and a per-backend
// circuit breaker wired into the gateway's health board.
//
// Usage:
//
//	daisgw -backend http://h1:8090/sql -backend http://h2:8090/sql \
//	       [-addr :8088] [-alias 'urn:cluster:emp=urn:r1@http://h1:8090/sql,urn:r2@http://h2:8090/sql'] \
//	       [-fanout 4] [-probe 5s] [-max-inflight 0] [-per-resource-inflight 0]
//	       [-log-level info] [-log-json]
//
// Observability lives on /metrics (gateway fan-out and per-backend
// counters in Prometheus text format), /healthz (aggregated backend
// health: 200 while at least one backend answers) and /spans.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dais/internal/gateway"
	"dais/internal/resil"
	"dais/internal/telemetry"
)

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// parseAlias decodes one -alias value:
//
//	name=resource@backendURL,resource@backendURL
//
// Member order is the scatter-gather merge order.
func parseAlias(v string) (gateway.Alias, error) {
	name, members, ok := strings.Cut(v, "=")
	if !ok || name == "" || members == "" {
		return gateway.Alias{}, fmt.Errorf("alias %q: want name=resource@backendURL[,...]", v)
	}
	a := gateway.Alias{Name: name}
	for _, m := range strings.Split(members, ",") {
		res, backend, ok := strings.Cut(m, "@")
		if !ok || res == "" || backend == "" {
			return gateway.Alias{}, fmt.Errorf("alias %q member %q: want resource@backendURL", v, m)
		}
		a.Members = append(a.Members, gateway.Member{Backend: backend, Resource: res})
	}
	return a, nil
}

func main() {
	var backends, aliasSpecs stringList
	addr := flag.String("addr", "127.0.0.1:8088", "listen address")
	flag.Var(&backends, "backend", "backend DAIS endpoint URL (repeatable, at least one)")
	flag.Var(&aliasSpecs, "alias", "cluster alias 'name=resource@backendURL[,resource@backendURL...]' (repeatable)")
	fanout := flag.Int("fanout", 4, "concurrent backend calls per scatter and per probe sweep")
	probe := flag.Duration("probe", 5*time.Second, "backend health-probe interval (0 probes once at startup)")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-backend probe deadline")
	maxInFlight := flag.Int("max-inflight", 0, "gateway-wide in-flight request cap; excess is shed with HTTP 503 + Retry-After (0 disables admission control)")
	perResource := flag.Int("per-resource-inflight", 0, "per-resource in-flight request cap (0 disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	logger := newLogger(os.Stderr, *logLevel, *logJSON)
	slog.SetDefault(logger)

	if len(backends) == 0 {
		fatal(logger, "no backends: pass -backend at least once")
	}
	var aliases []gateway.Alias
	for _, spec := range aliasSpecs {
		a, err := parseAlias(spec)
		if err != nil {
			fatal(logger, "bad alias", "err", err)
		}
		aliases = append(aliases, a)
	}

	obs := telemetry.NewObserver(telemetry.WithLogger(logger))
	cfg := gateway.Config{
		Backends:     backends,
		Aliases:      aliases,
		Fanout:       *fanout,
		Observer:     obs,
		ObserverSet:  true,
		ProbeTimeout: *probeTimeout,
	}
	if *maxInFlight > 0 || *perResource > 0 {
		global := *maxInFlight
		if global == 0 {
			global = -1 // only the per-resource cap was requested
		}
		cfg.Admission = &resil.AdmissionConfig{MaxInFlight: global, PerResource: *perResource}
	}
	gw := gateway.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", "addr", *addr, "err", err)
	}
	base := "http://" + ln.Addr().String()
	gw.SetAddress(base)

	// First probe runs synchronously so routing state is warm before the
	// gateway accepts traffic.
	var stopProber func()
	if *probe > 0 {
		stopProber = gw.StartProber(*probe)
	} else {
		gw.Probe(context.Background())
		stopProber = func() {}
	}
	defer stopProber()

	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/metrics", obs.Registry.Handler())
	mux.Handle("/healthz", gw.Healthz())
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(obs.Tracer.Recent(100)) //nolint:errcheck // client went away
	})

	logger.Info("daisgw listening", "base", base,
		"backends", len(gw.Backends()), "aliases", len(aliases), "fanout", *fanout)
	for _, b := range gw.Backends() {
		logger.Info("federating backend", "endpoint", b)
	}
	for _, a := range aliases {
		logger.Info("cluster alias", "name", a.Name, "members", len(a.Members))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	httpSrv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve failed", "err", err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		<-errCh
	}
}

// newLogger builds the process slog handler.
func newLogger(w *os.File, level string, asJSON bool) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// fatal logs and exits: the structured replacement for log.Fatalf.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}
