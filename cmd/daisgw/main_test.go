package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dais/internal/client"
	"dais/internal/core"
	"dais/internal/dair"
	"dais/internal/gateway"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
)

func TestParseAlias(t *testing.T) {
	a, err := parseAlias("urn:cluster:emp=urn:r1@http://h1:8090/sql,urn:r2@http://h2:8090/sql")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "urn:cluster:emp" || len(a.Members) != 2 {
		t.Fatalf("alias = %+v", a)
	}
	if a.Members[0].Resource != "urn:r1" || a.Members[0].Backend != "http://h1:8090/sql" {
		t.Fatalf("member 0 = %+v", a.Members[0])
	}
	if a.Members[1].Resource != "urn:r2" || a.Members[1].Backend != "http://h2:8090/sql" {
		t.Fatalf("member 1 = %+v", a.Members[1])
	}
	for _, bad := range []string{"", "name", "name=", "=x@y", "name=res", "name=@url", "name=res@"} {
		if _, err := parseAlias(bad); err == nil {
			t.Errorf("parseAlias(%q) accepted", bad)
		}
	}
}

// TestGatewaySmoke wires the daisgw composition — gateway plus its
// observability mux — over two in-process backends and drives one
// federated query through it.
func TestGatewaySmoke(t *testing.T) {
	mkBackend := func(name string, lo, hi int) (*httptest.Server, *dair.SQLDataResource) {
		eng := sqlengine.New(name)
		eng.MustExec(`CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(64))`)
		for i := lo; i <= hi; i++ {
			eng.MustExec(`INSERT INTO emp VALUES (` + sqlengine.NewInt(int64(i)).String() + `, 'e')`)
		}
		res := dair.NewSQLDataResource(eng)
		svc := core.NewDataService(name, core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
		ep := service.NewEndpoint(svc, service.WithWSRF())
		ep.Register(res)
		ts := httptest.NewServer(ep)
		t.Cleanup(ts.Close)
		svc.SetAddress(ts.URL)
		return ts, res
	}
	b1, r1 := mkBackend("b1", 1, 2)
	b2, r2 := mkBackend("b2", 3, 4)

	a, err := parseAlias("urn:cluster:emp=" + r1.AbstractName() + "@" + b1.URL + "," + r2.AbstractName() + "@" + b2.URL)
	if err != nil {
		t.Fatal(err)
	}
	obs := telemetry.NewObserver()
	gw := gateway.New(gateway.Config{
		Backends:    []string{b1.URL, b2.URL},
		Aliases:     []gateway.Alias{a},
		Observer:    obs,
		ObserverSet: true,
	})
	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.Handle("/metrics", obs.Registry.Handler())
	mux.Handle("/healthz", gw.Healthz())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	gw.SetAddress(ts.URL)
	gw.Probe(context.Background())

	c := client.New(nil)
	result, err := c.GenericQuery(context.Background(),
		client.Ref(ts.URL, "urn:cluster:emp"), dair.LanguageSQL92, `SELECT id FROM emp ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if result.Name.Local != "SQLRowset" {
		t.Fatalf("result = %v", result.Name)
	}

	// Observability surface: healthz reports both backends, metrics
	// carry the gateway instruments.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Healthy != 2 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), gateway.MetricBackendRequests) {
		t.Fatalf("metrics missing %s:\n%s", gateway.MetricBackendRequests, mbody)
	}
}
