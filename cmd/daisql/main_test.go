package main

import (
	"testing"

	"dais/internal/rowset"
)

func TestFormatFor(t *testing.T) {
	cases := map[string]string{
		"sqlrowset": rowset.FormatSQLRowset,
		"SQLRowset": rowset.FormatSQLRowset,
		"":          rowset.FormatSQLRowset,
		"webrowset": rowset.FormatWebRowSet,
		"csv":       rowset.FormatCSV,
		"CSV":       rowset.FormatCSV,
	}
	for in, want := range cases {
		got, err := formatFor(in)
		if err != nil || got != want {
			t.Errorf("formatFor(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := formatFor("parquet"); err == nil {
		t.Error("unknown format should error")
	}
}
