// Command daisql is a WS-DAIR consumer: it executes SQL against a DAIS
// relational data service, either directly (SQLExecute) or indirectly
// through the factory chain (SQLExecuteFactory → RowsetAccess paging).
//
// Usage:
//
//	daisql -url http://host:8090/sql [-resource urn:...] [-format csv|sqlrowset|webrowset]
//	       [-indirect] [-page 100] [-stream] [-chunks 4] [-generic] [-explain] 'SELECT ...'
//
// When -resource is omitted the first resource from GetResourceList is
// used. With -indirect the query runs through SQLExecuteFactory and the
// rows are pulled page by page with GetTuples; adding -stream (or
// -chunks N > 1) fetches N pages concurrently and prints them in row
// order as each contiguous run arrives. With -generic the statement
// travels as a WS-DAI GenericQuery instead of SQLExecute — the form a
// daisgw cluster alias answers by scatter-gathering across its shards.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dais/internal/client"
	"dais/internal/dair"
	"dais/internal/rowset"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/xmlutil"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090/sql", "data service endpoint URL")
	resource := flag.String("resource", "", "data resource abstract name (default: first listed)")
	format := flag.String("format", "sqlrowset", "dataset format: sqlrowset, webrowset or csv")
	indirect := flag.Bool("indirect", false, "use the indirect access pattern (factory + paging)")
	page := flag.Int("page", 100, "page size for indirect access")
	chunks := flag.Int("chunks", 1, "parallel GetTuples windows for indirect access (implies -stream)")
	stream := flag.Bool("stream", false, "indirect access: reassemble chunked pages in order as they arrive")
	destroy := flag.Bool("destroy", true, "destroy derived resources after use")
	generic := flag.Bool("generic", false, "send the statement as a WS-DAI GenericQuery (works against daisgw cluster aliases)")
	interactive := flag.Bool("i", false, "interactive mode: read statements from stdin")
	timeout := flag.Duration("timeout", 0, "per-call deadline (0 disables)")
	explain := flag.Bool("explain", false, "print the engine's physical plan for the statement instead of executing it")
	flag.Parse()
	if !*interactive && flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: daisql [flags] 'SELECT ...'   (or daisql -i)")
		flag.PrintDefaults()
		os.Exit(2)
	}

	formatURI, err := formatFor(*format)
	if err != nil {
		log.Fatalf("daisql: %v", err)
	}

	ctx := context.Background()
	var ics []soap.Interceptor
	if *timeout > 0 {
		ics = append(ics, soap.ClientTimeout(*timeout))
	}
	c := client.New(nil, ics...)
	name := *resource
	if name == "" {
		names, err := c.GetResourceList(ctx, *url)
		if err != nil {
			log.Fatalf("daisql: GetResourceList: %v", err)
		}
		if len(names) == 0 {
			log.Fatalf("daisql: service at %s hosts no resources", *url)
		}
		name = names[0]
	}
	ref := client.Ref(*url, name)

	if *interactive {
		repl(ctx, c, ref, formatURI)
		return
	}
	query := flag.Arg(0)
	if *explain {
		// EXPLAIN travels as ordinary SQL: the engine answers with a
		// one-column "plan" rowset describing the access path, index
		// choice, join strategy and pushed-down bounds.
		if err := runDirect(ctx, c, ref, "EXPLAIN "+query, formatURI); err != nil {
			log.Fatalf("daisql: %v", err)
		}
		return
	}
	if *generic {
		if err := runGeneric(ctx, c, ref, query); err != nil {
			log.Fatalf("daisql: %v", err)
		}
		return
	}
	if *indirect {
		if *stream || *chunks > 1 {
			runChunked(ctx, c, ref, query, formatURI, *page, *chunks, *destroy)
			return
		}
		runIndirect(ctx, c, ref, query, formatURI, *page, *destroy)
		return
	}
	if err := runDirect(ctx, c, ref, query, formatURI); err != nil {
		log.Fatalf("daisql: %v", err)
	}
}

func runDirect(ctx context.Context, c *client.Client, ref client.ResourceRef, query, formatURI string) error {
	res, err := c.SQLExecute(ctx, ref, query, nil, formatURI)
	if err != nil {
		return err
	}
	if res.UpdateCount >= 0 {
		fmt.Printf("update count: %d (SQLSTATE %s)\n", res.UpdateCount, res.CA.SQLState)
		return nil
	}
	printSet(res.Set, res.Raw)
	fmt.Printf("-- %d row(s), SQLSTATE %s, %d bytes on the wire\n",
		res.CA.RowsFetched, res.CA.SQLState, c.BytesReceived())
	return nil
}

// runGeneric sends the statement as a GenericQuery. Against a plain
// relational resource the service answers exactly as SQLExecute would;
// against a daisgw cluster alias the gateway scatter-gathers the query
// across every shard and merges the rowsets in shard order.
func runGeneric(ctx context.Context, c *client.Client, ref client.ResourceRef, query string) error {
	result, err := c.GenericQuery(ctx, ref, dair.LanguageSQL92, query)
	if err != nil {
		return err
	}
	switch result.Name.Local {
	case "SQLRowset":
		set, err := rowset.DecodeSQLRowsetElement(result)
		if err != nil {
			return err
		}
		printHeader(set)
		printRows(set)
		fmt.Printf("-- %d row(s) via GenericQuery\n", len(set.Rows))
	case "SQLUpdateCount":
		fmt.Printf("update count: %s\n", strings.TrimSpace(result.Text()))
	default:
		os.Stdout.Write(xmlutil.Marshal(result))
		fmt.Println()
	}
	return nil
}

// repl reads semicolon- or newline-terminated statements from stdin and
// executes them against the data service. The consumer-controlled
// transaction statements (BEGIN/COMMIT/ROLLBACK) pass straight through,
// so a service configured with TransactionConsumerControlled exposes
// multi-message transactions here.
func repl(ctx context.Context, c *client.Client, ref client.ResourceRef, formatURI string) {
	fmt.Printf("connected to %s (resource %s)\ntype SQL statements; \\q quits\n", ref.Address, ref.AbstractName)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("dais> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sc.Text()), ";"))
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		}
		if err := runDirect(ctx, c, ref, line, formatURI); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

func runIndirect(ctx context.Context, c *client.Client, ref client.ResourceRef, query, formatURI string, page int, destroy bool) {
	respRef, err := c.SQLExecuteFactory(ctx, ref, query, nil, nil)
	if err != nil {
		log.Fatalf("daisql: SQLExecuteFactory: %v", err)
	}
	fmt.Printf("-- response resource: %s @ %s\n", respRef.AbstractName, respRef.Address)
	rowsetRef, err := c.SQLRowsetFactory(ctx, respRef, formatURI, 0, nil)
	if err != nil {
		log.Fatalf("daisql: SQLRowsetFactory: %v", err)
	}
	fmt.Printf("-- rowset resource:   %s @ %s\n", rowsetRef.AbstractName, rowsetRef.Address)
	total := 0
	for pos := 1; ; pos += page {
		set, err := c.GetTuplesSet(ctx, rowsetRef, pos, page)
		if err != nil {
			log.Fatalf("daisql: GetTuples: %v", err)
		}
		if len(set.Rows) == 0 {
			break
		}
		if pos == 1 {
			printHeader(set)
		}
		printRows(set)
		total += len(set.Rows)
	}
	fmt.Printf("-- %d row(s) via %d-row pages\n", total, page)
	if destroy {
		if err := c.DestroyDataResource(ctx, rowsetRef); err != nil {
			log.Printf("daisql: destroy rowset: %v", err)
		}
		if err := c.DestroyDataResource(ctx, respRef); err != nil {
			log.Printf("daisql: destroy response: %v", err)
		}
	}
}

// runChunked is the streaming variant of runIndirect: N GetTuples
// windows in flight at once, pages printed strictly in row order as
// each contiguous run completes. Combined with a streaming service
// resource, rows start printing while the engine is still producing.
func runChunked(ctx context.Context, c *client.Client, ref client.ResourceRef, query, formatURI string, page, chunks int, destroy bool) {
	respRef, err := c.SQLExecuteFactory(ctx, ref, query, nil, nil)
	if err != nil {
		log.Fatalf("daisql: SQLExecuteFactory: %v", err)
	}
	fmt.Printf("-- response resource: %s @ %s\n", respRef.AbstractName, respRef.Address)
	rowsetRef, err := c.SQLRowsetFactory(ctx, respRef, formatURI, 0, nil)
	if err != nil {
		log.Fatalf("daisql: SQLRowsetFactory: %v", err)
	}
	fmt.Printf("-- rowset resource:   %s @ %s (chunks=%d)\n", rowsetRef.AbstractName, rowsetRef.Address, chunks)
	total := 0
	err = c.FetchPages(ctx, rowsetRef, client.FetchOptions{Chunks: chunks, ChunkRows: page},
		func(set *sqlengine.ResultSet) error {
			if total == 0 {
				printHeader(set)
			}
			printRows(set)
			total += len(set.Rows)
			return nil
		})
	if err != nil {
		log.Fatalf("daisql: chunked fetch: %v", err)
	}
	fmt.Printf("-- %d row(s) via %d-row pages, %d in flight\n", total, page, chunks)
	if destroy {
		if err := c.DestroyDataResource(ctx, rowsetRef); err != nil {
			log.Printf("daisql: destroy rowset: %v", err)
		}
		if err := c.DestroyDataResource(ctx, respRef); err != nil {
			log.Printf("daisql: destroy response: %v", err)
		}
	}
}

func formatFor(name string) (string, error) {
	switch strings.ToLower(name) {
	case "sqlrowset", "":
		return rowset.FormatSQLRowset, nil
	case "webrowset":
		return rowset.FormatWebRowSet, nil
	case "csv":
		return rowset.FormatCSV, nil
	}
	return "", fmt.Errorf("unknown format %q", name)
}

func printSet(set *sqlengine.ResultSet, raw []byte) {
	if set == nil {
		os.Stdout.Write(raw)
		fmt.Println()
		return
	}
	printHeader(set)
	printRows(set)
}

func printHeader(set *sqlengine.ResultSet) {
	names := make([]string, len(set.Columns))
	for i, col := range set.Columns {
		names[i] = col.Name
	}
	fmt.Println(strings.Join(names, "\t"))
}

func printRows(set *sqlengine.ResultSet) {
	for _, row := range set.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
}
