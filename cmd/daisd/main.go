// Command daisd hosts DAIS data services over SOAP/HTTP: a relational
// data service (WS-DAIR) backed by the in-memory SQL engine and an XML
// data service (WS-DAIX) backed by the XML collection store, both with
// the optional WSRF layer.
//
// Usage:
//
//	daisd [-addr :8090] [-wsrf] [-seed-rows 1000] [-concurrent=true] [-reap 5s]
//
// On startup it prints the endpoint URLs and the abstract names of the
// hosted resources; point daisql / daixq at them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/filestore"
	"dais/internal/service"
	"dais/internal/sqlengine"
	"dais/internal/wsrf"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	useWSRF := flag.Bool("wsrf", true, "enable the WSRF layer (fine-grained properties + soft-state lifetime)")
	seedRows := flag.Int("seed-rows", 100, "rows to seed into the demo employees table")
	concurrent := flag.Bool("concurrent", true, "value of the ConcurrentAccess property")
	reap := flag.Duration("reap", 5*time.Second, "WSRF reaper interval (0 disables)")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("daisd: listen: %v", err)
	}
	base := "http://" + ln.Addr().String()

	srv, stop := buildServer(base, config{
		wsrf:       *useWSRF,
		seedRows:   *seedRows,
		concurrent: *concurrent,
		reap:       *reap,
	})
	defer stop()

	fmt.Printf("daisd listening on %s\n", base)
	fmt.Printf("  relational service: %s/sql\n", base)
	fmt.Printf("    resource: %s\n", srv.sqlRes.AbstractName())
	fmt.Printf("  xml service:        %s/xml\n", base)
	fmt.Printf("    resource: %s\n", srv.xmlRes.AbstractName())
	fmt.Printf("  file service:       %s/files\n", base)
	fmt.Printf("    resource: %s\n", srv.fileRes.AbstractName())
	fmt.Printf("  wsrf: %v  concurrent access: %v\n", *useWSRF, *concurrent)

	// Serve until interrupted, then drain in-flight requests and stop
	// the WSRF reapers so no goroutine outlives the listener.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	httpSrv := &http.Server{Handler: srv.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "daisd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("daisd: shutting down")
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintf(os.Stderr, "daisd: shutdown: %v\n", err)
		}
		<-errCh
	}
}

// config collects the daisd settings.
type config struct {
	wsrf       bool
	seedRows   int
	concurrent bool
	reap       time.Duration
}

// server bundles the composed endpoints for main and for tests.
type server struct {
	mux     *http.ServeMux
	sqlEp   *service.Endpoint
	xmlEp   *service.Endpoint
	fileEp  *service.Endpoint
	sqlRes  *dair.SQLDataResource
	xmlRes  *daix.XMLCollectionResource
	fileRes *daif.FileDataResource
}

// buildServer assembles the relational and XML data services on a mux.
// The returned stop function closes the WSRF registries, stopping their
// reaper goroutines.
func buildServer(base string, cfg config) (*server, func()) {
	eng := sqlengine.New("hr")
	seedRelational(eng, cfg.seedRows)
	sqlRes := dair.NewSQLDataResource(eng)
	sqlSvc := core.NewDataService("relational",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	var sqlOpts []service.EndpointOption
	if cfg.wsrf {
		sqlOpts = append(sqlOpts, service.WithWSRF())
	}
	sqlEp := service.NewEndpoint(sqlSvc, sqlOpts...)
	sqlEp.Register(sqlRes)
	sqlSvc.SetAddress(base + "/sql")

	store := xmldb.NewStore("library")
	seedXML(store)
	xmlRes := daix.NewXMLCollectionResource(store, "")
	xmlSvc := core.NewDataService("xml",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	var xmlOpts []service.EndpointOption
	if cfg.wsrf {
		xmlOpts = append(xmlOpts, service.WithWSRF())
	}
	xmlEp := service.NewEndpoint(xmlSvc, xmlOpts...)
	xmlEp.Register(xmlRes)
	xmlSvc.SetAddress(base + "/xml")

	fstore := filestore.NewStore("archive")
	seedFiles(fstore)
	fileRes := daif.NewFileDataResource(fstore)
	fileSvc := core.NewDataService("files",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(daif.StandardConfigurationMaps()...))
	var fileOpts []service.EndpointOption
	if cfg.wsrf {
		fileOpts = append(fileOpts, service.WithWSRF())
	}
	fileEp := service.NewEndpoint(fileSvc, fileOpts...)
	fileEp.Register(fileRes)
	fileSvc.SetAddress(base + "/files")

	var regs []*wsrf.Registry
	if cfg.wsrf {
		for _, ep := range []*service.Endpoint{sqlEp, xmlEp, fileEp} {
			if reg := ep.WSRF(); reg != nil {
				regs = append(regs, reg)
				if cfg.reap > 0 {
					reg.StartReaper(cfg.reap)
				}
			}
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/sql", sqlEp)
	mux.Handle("/xml", xmlEp)
	mux.Handle("/files", fileEp)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return &server{mux: mux, sqlEp: sqlEp, xmlEp: xmlEp, fileEp: fileEp,
			sqlRes: sqlRes, xmlRes: xmlRes, fileRes: fileRes},
		func() {
			for _, r := range regs {
				r.Close()
			}
		}
}

func seedRelational(eng *sqlengine.Engine, rows int) {
	eng.MustExec(`CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(32) NOT NULL)`)
	eng.MustExec(`INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'legal'), (4, 'ops')`)
	eng.MustExec(`CREATE TABLE emp (
		id INTEGER PRIMARY KEY,
		name VARCHAR(64) NOT NULL,
		dept_id INTEGER,
		salary DOUBLE,
		active BOOLEAN DEFAULT TRUE
	)`)
	sess := eng.NewSession()
	for i := 1; i <= rows; i++ {
		if _, err := sess.Execute(`INSERT INTO emp (id, name, dept_id, salary) VALUES (?, ?, ?, ?)`,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("employee-%04d", i)),
			sqlengine.NewInt(int64(i%4+1)),
			sqlengine.NewDouble(50000+float64((i*937)%90000))); err != nil {
			log.Fatalf("daisd: seed: %v", err)
		}
	}
}

func seedXML(store *xmldb.Store) {
	docs := []string{
		`<book id="1" genre="db"><title>Principles of Distributed Database Systems</title><author>Ozsu</author><price>85</price></book>`,
		`<book id="2" genre="grid"><title>The Grid</title><author>Foster</author><price>60</price></book>`,
		`<book id="3" genre="db"><title>Transaction Processing</title><author>Gray</author><price>110</price></book>`,
	}
	for i, d := range docs {
		e, err := xmlutil.ParseString(d)
		if err != nil {
			log.Fatalf("daisd: seed xml: %v", err)
		}
		if err := store.AddDocument("", fmt.Sprintf("book%d.xml", i+1), e); err != nil {
			log.Fatalf("daisd: seed xml: %v", err)
		}
	}
}

func seedFiles(store *filestore.Store) {
	for name, data := range map[string]string{
		"runs/2005/run-001.dat": "evt-001;evt-002;evt-003;",
		"runs/2005/run-002.dat": "evt-101;evt-102;",
		"calib/atlas.cal":       "gain=1.07",
		"README":                "demo file archive",
	} {
		if err := store.Write(name, []byte(data)); err != nil {
			log.Fatalf("daisd: seed files: %v", err)
		}
	}
}
