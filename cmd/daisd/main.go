// Command daisd hosts DAIS data services over SOAP/HTTP: a relational
// data service (WS-DAIR) backed by the in-memory SQL engine and an XML
// data service (WS-DAIX) backed by the XML collection store, both with
// the optional WSRF layer.
//
// Usage:
//
//	daisd [-addr :8090] [-wsrf] [-seed-rows 1000] [-concurrent=true] [-reap 5s]
//	      [-ops-addr 127.0.0.1:9090] [-pprof] [-log-level info] [-log-json] [-slow 1s]
//	      [-max-inflight 0] [-per-resource-inflight 0] [-rowset-mem-cap 67108864]
//
// On startup it logs the endpoint URLs and the abstract names of the
// hosted resources; point daisql / daixq at them. Observability lives
// on /metrics (Prometheus text format), /healthz (JSON liveness of the
// registries and backends) and /spans (recent request spans) — on the
// main listener and, when -ops-addr is set, on a separate ops listener
// that optionally adds net/http/pprof.
//
// -max-inflight bounds concurrent requests per endpoint and
// -per-resource-inflight bounds them per data resource; excess load is
// shed with a ServiceBusyFault carried on HTTP 503 + Retry-After,
// which resilient clients honour as retry pacing (DESIGN.md §5
// "Resilience architecture").
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dais/internal/core"
	"dais/internal/daif"
	"dais/internal/dair"
	"dais/internal/daix"
	"dais/internal/filestore"
	"dais/internal/resil"
	"dais/internal/rowset"
	"dais/internal/service"
	"dais/internal/soap"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/wsrf"
	"dais/internal/xmldb"
	"dais/internal/xmlutil"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	useWSRF := flag.Bool("wsrf", true, "enable the WSRF layer (fine-grained properties + soft-state lifetime)")
	seedRows := flag.Int("seed-rows", 100, "rows to seed into the demo employees table")
	concurrent := flag.Bool("concurrent", true, "value of the ConcurrentAccess property")
	reap := flag.Duration("reap", 5*time.Second, "WSRF reaper interval (0 disables)")
	opsAddr := flag.String("ops-addr", "", "separate listener for /metrics, /healthz, /spans and pprof (empty serves them on the main listener only)")
	usePprof := flag.Bool("pprof", false, "expose net/http/pprof on the ops listener")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error (debug logs every request)")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	slow := flag.Duration("slow", time.Second, "slow-call log threshold (0 disables)")
	maxInFlight := flag.Int("max-inflight", 0, "per-endpoint in-flight request cap; excess requests are shed with HTTP 503 + Retry-After (0 disables admission control)")
	perResource := flag.Int("per-resource-inflight", 0, "per-data-resource in-flight request cap (0 disables)")
	rowsetMemCap := flag.Int64("rowset-mem-cap", 64<<20, "streaming rowset delivery: bytes of result rows kept in memory per derived rowset before pages spill to disk (0 disables streaming delivery)")
	planCache := flag.Int("plan-cache", 256, "prepared-plan cache capacity per engine (0 disables plan caching)")
	flag.Parse()

	logger := newLogger(os.Stderr, *logLevel, *logJSON)
	slog.SetDefault(logger)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", "addr", *addr, "err", err)
	}
	base := "http://" + ln.Addr().String()

	srv, stop := buildServer(base, config{
		wsrf:         *useWSRF,
		seedRows:     *seedRows,
		concurrent:   *concurrent,
		reap:         *reap,
		slow:         *slow,
		logger:       logger,
		logCalls:     logger.Enabled(context.Background(), slog.LevelDebug),
		maxInFlight:  *maxInFlight,
		perResource:  *perResource,
		rowsetMemCap: *rowsetMemCap,
		planCache:    *planCache,
	})
	defer stop()

	logger.Info("daisd listening", "base", base, "wsrf", *useWSRF, "concurrent", *concurrent)
	logger.Info("service ready", "kind", "relational", "endpoint", base+"/sql", "resource", srv.sqlRes.AbstractName())
	logger.Info("service ready", "kind", "xml", "endpoint", base+"/xml", "resource", srv.xmlRes.AbstractName())
	logger.Info("service ready", "kind", "files", "endpoint", base+"/files", "resource", srv.fileRes.AbstractName())

	// Optional dedicated ops listener: the same observability surface as
	// the main mux, plus pprof, isolated from data-path traffic.
	var opsSrv *http.Server
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fatal(logger, "ops listen failed", "addr", *opsAddr, "err", err)
		}
		opsSrv = &http.Server{Handler: srv.opsMux(*usePprof)}
		go opsSrv.Serve(opsLn) //nolint:errcheck // closed on shutdown
		logger.Info("ops listener ready", "addr", "http://"+opsLn.Addr().String(), "pprof", *usePprof)
	} else if *usePprof {
		logger.Warn("-pprof requires -ops-addr; pprof not exposed")
	}

	// Serve until interrupted, then drain in-flight requests, stop the
	// WSRF reapers and flush a final telemetry summary.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	httpSrv := &http.Server{Handler: srv.mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "serve failed", "err", err)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			logger.Error("shutdown", "err", err)
		}
		if opsSrv != nil {
			opsSrv.Shutdown(shutCtx) //nolint:errcheck // best effort
		}
		<-errCh
	}
	srv.flushTelemetry(logger)
}

// newLogger builds the process slog handler.
func newLogger(w *os.File, level string, asJSON bool) *slog.Logger {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if asJSON {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// fatal logs and exits: the structured replacement for log.Fatalf.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

// config collects the daisd settings.
type config struct {
	wsrf       bool
	seedRows   int
	concurrent bool
	reap       time.Duration
	slow       time.Duration // slow-call log threshold (0 disables)
	logger     *slog.Logger  // nil = slog.Default()
	logCalls   bool          // log every request at debug level
	// Admission control: in-flight caps per endpoint and per data
	// resource; both 0 = accept unbounded concurrency.
	maxInFlight int
	perResource int
	// Streaming rowset delivery: in-memory byte cap per derived rowset
	// before pages spill to the filestore (0 disables streaming).
	rowsetMemCap int64
	// Prepared-plan cache capacity per engine (0 disables caching).
	planCache int
}

// server bundles the composed endpoints for main and for tests.
type server struct {
	mux     *http.ServeMux
	obs     *telemetry.Observer
	health  *healthChecker
	sqlEp   *service.Endpoint
	xmlEp   *service.Endpoint
	fileEp  *service.Endpoint
	sqlRes  *dair.SQLDataResource
	xmlRes  *daix.XMLCollectionResource
	fileRes *daif.FileDataResource
}

// buildServer assembles the relational, XML and file data services on a
// mux, instrumented by one shared observer. The returned stop function
// closes the WSRF registries, stopping their reaper goroutines.
func buildServer(base string, cfg config) (*server, func()) {
	logger := cfg.logger
	if logger == nil {
		logger = slog.Default()
	}
	obsOpts := []telemetry.ObserverOption{telemetry.WithLogger(logger), telemetry.WithSlowThreshold(cfg.slow)}
	obs := telemetry.NewObserver(obsOpts...)
	epOpts := func() []service.EndpointOption {
		out := []service.EndpointOption{service.WithTelemetry(obs)}
		if cfg.logCalls {
			out = append(out, service.WithServerInterceptors(logInterceptor(logger)))
		}
		if cfg.wsrf {
			out = append(out, service.WithWSRF())
		}
		if cfg.maxInFlight > 0 || cfg.perResource > 0 {
			global := cfg.maxInFlight
			if global == 0 {
				global = -1 // only the per-resource cap was requested
			}
			out = append(out, service.WithAdmission(resil.AdmissionConfig{
				MaxInFlight: global,
				PerResource: cfg.perResource,
			}))
		}
		return out
	}

	eng := sqlengine.New("hr", sqlengine.WithPlanCacheSize(cfg.planCache))
	seedRelational(logger, eng, cfg.seedRows)
	// Plan-cache hit/miss/size counters land on /metrics, labelled by
	// engine.
	service.RegisterPlanCacheMetrics(obs.Registry, eng)
	// Columnar-execution counters: chunks evaluated by vector kernels
	// and chunks skipped outright via zone maps.
	service.RegisterVectorMetrics(obs.Registry, eng)
	var sqlOpts []dair.ResourceOption
	if cfg.rowsetMemCap > 0 {
		// Streaming delivery: derived rowsets answer GetTuples while the
		// engine is still producing, spilling past the memory cap into a
		// dedicated filestore; spill volume, rows produced and buffer
		// depth land on /metrics.
		sqlOpts = append(sqlOpts, dair.WithStreamDelivery(rowset.BufferConfig{
			MemCap: cfg.rowsetMemCap,
			Spill:  filestore.NewStore("rowset-spill"),
			Hooks:  service.RowsetStreamHooks(obs.Registry),
		}))
	}
	sqlRes := dair.NewSQLDataResource(eng, sqlOpts...)
	sqlSvc := core.NewDataService("relational",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(dair.StandardConfigurationMaps()...))
	sqlEp := service.NewEndpoint(sqlSvc, epOpts()...)
	sqlEp.Register(sqlRes)
	sqlSvc.SetAddress(base + "/sql")

	store := xmldb.NewStore("library")
	seedXML(logger, store)
	xmlRes := daix.NewXMLCollectionResource(store, "")
	xmlSvc := core.NewDataService("xml",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(daix.StandardConfigurationMaps()...))
	xmlEp := service.NewEndpoint(xmlSvc, epOpts()...)
	xmlEp.Register(xmlRes)
	xmlSvc.SetAddress(base + "/xml")

	fstore := filestore.NewStore("archive")
	seedFiles(logger, fstore)
	fileRes := daif.NewFileDataResource(fstore)
	fileSvc := core.NewDataService("files",
		core.WithConcurrentAccess(cfg.concurrent),
		core.WithConfigurationMap(daif.StandardConfigurationMaps()...))
	fileEp := service.NewEndpoint(fileSvc, epOpts()...)
	fileEp.Register(fileRes)
	fileSvc.SetAddress(base + "/files")

	var regs []*wsrf.Registry
	if cfg.wsrf {
		for _, ep := range []*service.Endpoint{sqlEp, xmlEp, fileEp} {
			if reg := ep.WSRF(); reg != nil {
				regs = append(regs, reg)
				if cfg.reap > 0 {
					reg.StartReaper(cfg.reap)
				}
			}
		}
	}

	health := &healthChecker{started: time.Now()}
	health.add("relational", func(ctx context.Context) error {
		_, err := eng.Exec(`SELECT COUNT(*) FROM dept`)
		return err
	})
	health.add("xml", func(ctx context.Context) error {
		_, err := store.ListDocuments("")
		return err
	})
	health.add("files", func(ctx context.Context) error {
		_, err := fstore.List("**")
		return err
	})
	for i, reg := range regs {
		reg := reg
		health.add(fmt.Sprintf("wsrf-%d", i), func(ctx context.Context) error {
			reg.IDs() // proves the registry lock is not wedged
			return nil
		})
	}

	srv := &server{mux: http.NewServeMux(), obs: obs, health: health,
		sqlEp: sqlEp, xmlEp: xmlEp, fileEp: fileEp,
		sqlRes: sqlRes, xmlRes: xmlRes, fileRes: fileRes}
	srv.mux.Handle("/sql", sqlEp)
	srv.mux.Handle("/xml", xmlEp)
	srv.mux.Handle("/files", fileEp)
	srv.mountOps(srv.mux)
	return srv, func() {
		for _, r := range regs {
			r.Close()
		}
	}
}

// mountOps registers the observability endpoints on a mux.
func (s *server) mountOps(mux *http.ServeMux) {
	mux.Handle("/metrics", s.obs.Registry.Handler())
	mux.Handle("/healthz", s.health)
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.obs.Tracer.Recent(100)) //nolint:errcheck // client went away
	})
}

// opsMux builds the dedicated ops listener surface: the observability
// endpoints plus (optionally) net/http/pprof.
func (s *server) opsMux(withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	s.mountOps(mux)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// flushTelemetry logs a final request summary on graceful shutdown so
// short-lived runs leave their numbers in the log.
func (s *server) flushTelemetry(logger *slog.Logger) {
	var served, faults int64
	for _, sm := range s.obs.Registry.Snapshot() {
		switch sm.Name {
		case telemetry.MetricRequests:
			if sm.Label("side") == telemetry.SideServer {
				served += int64(sm.Value)
			}
		case telemetry.MetricFaults:
			if sm.Label("side") == telemetry.SideServer {
				faults += int64(sm.Value)
			}
		}
	}
	logger.Info("telemetry flush", "requests_served", served, "faults", faults,
		"spans_recorded", s.obs.Tracer.Total())
}

// logInterceptor logs every dispatched request with the request ID the
// pipeline interceptor put on the context, so log lines, spans and
// metrics all correlate on one key.
func logInterceptor(logger *slog.Logger) soap.Interceptor {
	return func(ctx context.Context, action string, env *soap.Envelope, next soap.HandlerFunc) (*soap.Envelope, error) {
		start := time.Now()
		resp, err := next(ctx, action, env)
		logger.Debug("request",
			"request_id", soap.RequestIDFromContext(ctx),
			"action", action,
			"duration", time.Since(start),
			"code", telemetry.FaultCode(err))
		return resp, err
	}
}

// healthChecker serves /healthz: every registered backend probe must
// pass for the service to report healthy.
type healthChecker struct {
	started time.Time
	checks  []struct {
		name  string
		check func(context.Context) error
	}
}

func (h *healthChecker) add(name string, check func(context.Context) error) {
	h.checks = append(h.checks, struct {
		name  string
		check func(context.Context) error
	}{name, check})
}

func (h *healthChecker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	status := "ok"
	results := map[string]string{}
	for _, c := range h.checks {
		if err := c.check(ctx); err != nil {
			status = "degraded"
			results[c.name] = err.Error()
		} else {
			results[c.name] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck // client went away
		"status":         status,
		"checks":         results,
		"uptime_seconds": int64(time.Since(h.started).Seconds()),
	})
}

func seedRelational(logger *slog.Logger, eng *sqlengine.Engine, rows int) {
	eng.MustExec(`CREATE TABLE dept (id INTEGER PRIMARY KEY, name VARCHAR(32) NOT NULL)`)
	eng.MustExec(`INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'legal'), (4, 'ops')`)
	eng.MustExec(`CREATE TABLE emp (
		id INTEGER PRIMARY KEY,
		name VARCHAR(64) NOT NULL,
		dept_id INTEGER,
		salary DOUBLE,
		active BOOLEAN DEFAULT TRUE
	)`)
	sess := eng.NewSession()
	for i := 1; i <= rows; i++ {
		if _, err := sess.Execute(`INSERT INTO emp (id, name, dept_id, salary) VALUES (?, ?, ?, ?)`,
			sqlengine.NewInt(int64(i)),
			sqlengine.NewString(fmt.Sprintf("employee-%04d", i)),
			sqlengine.NewInt(int64(i%4+1)),
			sqlengine.NewDouble(50000+float64((i*937)%90000))); err != nil {
			fatal(logger, "seed relational", "err", err)
		}
	}
}

func seedXML(logger *slog.Logger, store *xmldb.Store) {
	docs := []string{
		`<book id="1" genre="db"><title>Principles of Distributed Database Systems</title><author>Ozsu</author><price>85</price></book>`,
		`<book id="2" genre="grid"><title>The Grid</title><author>Foster</author><price>60</price></book>`,
		`<book id="3" genre="db"><title>Transaction Processing</title><author>Gray</author><price>110</price></book>`,
	}
	for i, d := range docs {
		e, err := xmlutil.ParseString(d)
		if err != nil {
			fatal(logger, "seed xml", "err", err)
		}
		if err := store.AddDocument("", fmt.Sprintf("book%d.xml", i+1), e); err != nil {
			fatal(logger, "seed xml", "err", err)
		}
	}
}

func seedFiles(logger *slog.Logger, store *filestore.Store) {
	for name, data := range map[string]string{
		"runs/2005/run-001.dat": "evt-001;evt-002;evt-003;",
		"runs/2005/run-002.dat": "evt-101;evt-102;",
		"calib/atlas.cal":       "gain=1.07",
		"README":                "demo file archive",
	} {
		if err := store.Write(name, []byte(data)); err != nil {
			fatal(logger, "seed files", "err", err)
		}
	}
}
