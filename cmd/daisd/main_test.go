package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/sqlengine"
	"dais/internal/xmldb"
)

// startTestServer serves the composed daisd mux on a test listener and
// fixes the advertised service addresses to match.
func startTestServer(t *testing.T, cfg config) (*server, string) {
	t.Helper()
	srv, stop := buildServer("", cfg)
	ts := httptest.NewServer(srv.mux)
	t.Cleanup(ts.Close)
	t.Cleanup(stop)
	srv.sqlEp.Service().SetAddress(ts.URL + "/sql")
	srv.xmlEp.Service().SetAddress(ts.URL + "/xml")
	return srv, ts.URL
}

func TestServerComposition(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 25, concurrent: true, reap: 10 * time.Millisecond})
	c := client.New(nil)

	// Health endpoint.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %q", body)
	}

	// The relational service answers end-to-end.
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	res, err := c.SQLExecute(context.Background(), sqlRef, `SELECT COUNT(*) FROM emp`, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].I != 25 {
		t.Fatalf("seeded rows = %v", res.Set.Rows[0][0])
	}
	joined, err := c.SQLExecute(context.Background(), sqlRef,
		`SELECT d.name, COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id GROUP BY d.name ORDER BY d.name`, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Set.Rows) != 4 {
		t.Fatalf("dept groups = %d", len(joined.Set.Rows))
	}

	// The XML service answers end-to-end.
	xmlRef := client.Ref(base+"/xml", srv.xmlRes.AbstractName())
	items, err := c.XPathExecute(context.Background(), xmlRef, `/book[@genre='db']/title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %+v", items)
	}

	// The reaper collects an expired derived resource automatically.
	derived, err := c.SQLExecuteFactory(context.Background(), sqlRef, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Second)
	if _, err := c.SetTerminationTime(context.Background(), derived, &past); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.GetSQLRowset(context.Background(), derived, 0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper did not collect the derived resource")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerWithoutWSRF(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: false, seedRows: 3, concurrent: true})
	c := client.New(nil)
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	// Core operations work.
	if _, err := c.GetPropertyDocument(context.Background(), sqlRef); err != nil {
		t.Fatal(err)
	}
	// WSRF operations are not routed.
	if _, err := c.GetResourceProperty(context.Background(), sqlRef, "Readable"); err == nil ||
		!strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestSeedRelational(t *testing.T) {
	eng := sqlengine.New("t")
	seedRelational(eng, 10)
	if n, _ := eng.Database().TableRowCount("emp"); n != 10 {
		t.Fatalf("emp rows = %d", n)
	}
	if n, _ := eng.Database().TableRowCount("dept"); n != 4 {
		t.Fatalf("dept rows = %d", n)
	}
	// Every employee's dept exists.
	res, err := eng.Exec(`SELECT COUNT(*) FROM emp WHERE dept_id NOT IN (SELECT id FROM dept)`)
	if err != nil || res.Set.Rows[0][0].I != 0 {
		t.Fatalf("orphans = %+v, %v", res, err)
	}
}

func TestSeedXML(t *testing.T) {
	store := xmldb.NewStore("t")
	seedXML(store)
	names, err := store.ListDocuments("")
	if err != nil || len(names) != 3 {
		t.Fatalf("names = %v, %v", names, err)
	}
	res, err := store.XPathQuery("", `count(/book/title)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Value != "1" {
			t.Fatalf("each book needs a title: %+v", r)
		}
	}
}

func TestFileServiceComposition(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	srv.fileEp.Service().SetAddress(base + "/files")
	c := client.New(nil)
	ref := client.Ref(base+"/files", srv.fileRes.AbstractName())
	infos, err := c.ListFiles(context.Background(), ref, "runs/**")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	data, err := c.ReadFile(context.Background(), ref, "calib/atlas.cal", 0, -1)
	if err != nil || string(data) != "gain=1.07" {
		t.Fatalf("read = %q, %v", data, err)
	}
	staged, err := c.FileSelectFactory(context.Background(), ref, "runs/**", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListFiles(context.Background(), staged, ""); err != nil {
		t.Fatal(err)
	}
}
