package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dais/internal/client"
	"dais/internal/dair"
	"dais/internal/ops"
	"dais/internal/sqlengine"
	"dais/internal/telemetry"
	"dais/internal/xmldb"
)

// startTestServer serves the composed daisd mux on a test listener and
// fixes the advertised service addresses to match.
func startTestServer(t *testing.T, cfg config) (*server, string) {
	t.Helper()
	srv, stop := buildServer("", cfg)
	ts := httptest.NewServer(srv.mux)
	t.Cleanup(ts.Close)
	t.Cleanup(stop)
	srv.sqlEp.Service().SetAddress(ts.URL + "/sql")
	srv.xmlEp.Service().SetAddress(ts.URL + "/xml")
	return srv, ts.URL
}

func TestServerComposition(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 25, concurrent: true, reap: 10 * time.Millisecond})
	c := client.New(nil)

	// Health endpoint.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %q", body)
	}

	// The relational service answers end-to-end.
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	res, err := c.SQLExecute(context.Background(), sqlRef, `SELECT COUNT(*) FROM emp`, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Set.Rows[0][0].I != 25 {
		t.Fatalf("seeded rows = %v", res.Set.Rows[0][0])
	}
	joined, err := c.SQLExecute(context.Background(), sqlRef,
		`SELECT d.name, COUNT(*) FROM emp e JOIN dept d ON e.dept_id = d.id GROUP BY d.name ORDER BY d.name`, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(joined.Set.Rows) != 4 {
		t.Fatalf("dept groups = %d", len(joined.Set.Rows))
	}

	// The XML service answers end-to-end.
	xmlRef := client.Ref(base+"/xml", srv.xmlRes.AbstractName())
	items, err := c.XPathExecute(context.Background(), xmlRef, `/book[@genre='db']/title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %+v", items)
	}

	// The reaper collects an expired derived resource automatically.
	derived, err := c.SQLExecuteFactory(context.Background(), sqlRef, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Second)
	if _, err := c.SetTerminationTime(context.Background(), derived, &past); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.GetSQLRowset(context.Background(), derived, 0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reaper did not collect the derived resource")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// scrape fetches and parses the server's /metrics exposition.
func scrape(t *testing.T, base string) []telemetry.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("parse metrics: %v\n%s", err, body)
	}
	return samples
}

// TestMetricsEndpoint is the observability acceptance test: a daisd
// started by the tests exposes /metrics whose per-operation request
// counts, latency histograms, fault tallies and WSRF resource gauges
// change observably after a GenericQuery, an SQLExecuteFactory create
// and a DestroyDataResource.
func TestMetricsEndpoint(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 5, concurrent: true})
	c := client.New(nil)
	ctx := context.Background()
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	sum := telemetry.CountFromSamples

	before := scrape(t, base)
	if _, err := c.GenericQuery(ctx, sqlRef, dair.LanguageSQL92, `SELECT COUNT(*) FROM emp`); err != nil {
		t.Fatal(err)
	}
	derived, err := c.SQLExecuteFactory(ctx, sqlRef, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := scrape(t, base)

	gq := map[string]string{"side": "server", "op": "GenericQuery"}
	if d := sum(mid, telemetry.MetricRequests, gq) - sum(before, telemetry.MetricRequests, gq); d != 1 {
		t.Fatalf("GenericQuery request count moved by %v, want 1", d)
	}
	if d := sum(mid, telemetry.MetricLatency+"_count", gq) - sum(before, telemetry.MetricLatency+"_count", gq); d != 1 {
		t.Fatalf("GenericQuery latency observations moved by %v, want 1", d)
	}
	if sum(mid, telemetry.MetricLatency+"_bucket", map[string]string{"side": "server", "op": "GenericQuery", "le": "+Inf"}) < 1 {
		t.Fatal("latency histogram has no +Inf bucket sample")
	}
	for _, dir := range []string{"in", "out"} {
		f := map[string]string{"side": "server", "direction": dir, "op": "GenericQuery"}
		if d := sum(mid, telemetry.MetricBytes, f) - sum(before, telemetry.MetricBytes, f); d <= 0 {
			t.Fatalf("envelope bytes %s moved by %v, want > 0", dir, d)
		}
	}
	// The class label comes from the Fig. 6 catalog row.
	spec, _ := ops.ByAction(ops.ActGenericQuery)
	if sum(mid, telemetry.MetricRequests, map[string]string{"side": "server", "op": "GenericQuery", "class": spec.Class, "code": "ok"}) != 1 {
		t.Fatal("GenericQuery not counted under its interface class with code ok")
	}

	// The factory-created response resource shows up in the live gauge.
	live := map[string]string{"service": "relational", "kind": string(ops.KindSQLResponse)}
	if d := sum(mid, telemetry.MetricWSRFLive, live) - sum(before, telemetry.MetricWSRFLive, live); d != 1 {
		t.Fatalf("live SQLResponse gauge moved by %v, want 1", d)
	}
	if sum(mid, telemetry.MetricWSRFLive, map[string]string{"service": "relational", "kind": string(ops.KindSQL)}) != 1 {
		t.Fatal("base SQL resource missing from the live gauge")
	}

	// Destroying the derived resource drops the gauge back down.
	if err := c.DestroyDataResource(ctx, derived); err != nil {
		t.Fatal(err)
	}
	after := scrape(t, base)
	if d := sum(after, telemetry.MetricWSRFLive, live) - sum(mid, telemetry.MetricWSRFLive, live); d != -1 {
		t.Fatalf("live SQLResponse gauge moved by %v after destroy, want -1", d)
	}
	destroy := map[string]string{"side": "server", "op": "DestroyDataResource"}
	if d := sum(after, telemetry.MetricRequests, destroy) - sum(before, telemetry.MetricRequests, destroy); d != 1 {
		t.Fatalf("DestroyDataResource request count moved by %v, want 1", d)
	}

	// A WSRF lifetime termination shows up in the terminations counter.
	doomed, err := c.SQLExecuteFactory(ctx, sqlRef, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Second)
	if _, err := c.SetTerminationTime(ctx, doomed, &past); err != nil {
		t.Fatal(err)
	}
	srv.sqlEp.WSRF().SweepExpired()
	dead := map[string]string{"service": "relational"}
	final := scrape(t, base)
	if d := sum(final, telemetry.MetricWSRFDead, dead) - sum(before, telemetry.MetricWSRFDead, dead); d != 1 {
		t.Fatalf("terminations counter moved by %v, want 1", d)
	}

	// A typed fault is tallied under its fault-code label.
	if _, err := c.GenericQuery(ctx, sqlRef, "urn:not-a-language", "x"); err == nil {
		t.Fatal("expected an InvalidLanguageFault")
	}
	faulted := scrape(t, base)
	if sum(faulted, telemetry.MetricFaults, map[string]string{"side": "server", "op": "GenericQuery", "code": "InvalidLanguageFault"}) != 1 {
		t.Fatal("InvalidLanguageFault not tallied in the fault counter")
	}
}

func TestHealthzJSON(t *testing.T) {
	_, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status = %q, checks = %v", h.Status, h.Checks)
	}
	for _, name := range []string{"relational", "xml", "files"} {
		if h.Checks[name] != "ok" {
			t.Fatalf("check %s = %q", name, h.Checks[name])
		}
	}
}

func TestSpansEndpoint(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	c := client.New(nil)
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	if _, err := c.GenericQuery(context.Background(), sqlRef, dair.LanguageSQL92, `SELECT 1`); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(base + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []telemetry.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		if s.Op == "GenericQuery" && s.Side == telemetry.SideServer {
			if s.RequestID == "" {
				t.Fatal("span has no request ID")
			}
			if s.AbstractName != srv.sqlRes.AbstractName() {
				t.Fatalf("span abstract name = %q", s.AbstractName)
			}
			return
		}
	}
	t.Fatalf("no server GenericQuery span in %+v", spans)
}

func TestOpsMux(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	ts := httptest.NewServer(srv.opsMux(true))
	defer ts.Close()
	c := client.New(nil)
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	if _, err := c.GenericQuery(context.Background(), sqlRef, dair.LanguageSQL92, `SELECT 1`); err != nil {
		t.Fatal(err)
	}
	// The ops listener exposes the same registry as the main mux, plus
	// pprof when enabled.
	samples := scrape(t, ts.URL)
	if telemetry.CountFromSamples(samples, telemetry.MetricRequests, map[string]string{"side": "server"}) < 1 {
		t.Fatal("ops listener serves an empty registry")
	}
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}

func TestServerWithoutWSRF(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: false, seedRows: 3, concurrent: true})
	c := client.New(nil)
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	// Core operations work.
	if _, err := c.GetPropertyDocument(context.Background(), sqlRef); err != nil {
		t.Fatal(err)
	}
	// WSRF operations are not routed.
	if _, err := c.GetResourceProperty(context.Background(), sqlRef, "Readable"); err == nil ||
		!strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestSeedRelational(t *testing.T) {
	eng := sqlengine.New("t")
	seedRelational(slog.Default(), eng, 10)
	if n, _ := eng.Database().TableRowCount("emp"); n != 10 {
		t.Fatalf("emp rows = %d", n)
	}
	if n, _ := eng.Database().TableRowCount("dept"); n != 4 {
		t.Fatalf("dept rows = %d", n)
	}
	// Every employee's dept exists.
	res, err := eng.Exec(`SELECT COUNT(*) FROM emp WHERE dept_id NOT IN (SELECT id FROM dept)`)
	if err != nil || res.Set.Rows[0][0].I != 0 {
		t.Fatalf("orphans = %+v, %v", res, err)
	}
}

func TestSeedXML(t *testing.T) {
	store := xmldb.NewStore("t")
	seedXML(slog.Default(), store)
	names, err := store.ListDocuments("")
	if err != nil || len(names) != 3 {
		t.Fatalf("names = %v, %v", names, err)
	}
	res, err := store.XPathQuery("", `count(/book/title)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Value != "1" {
			t.Fatalf("each book needs a title: %+v", r)
		}
	}
}

// TestResourceListConformance drives the CoreResourceList pattern
// (paper §4.3's optional interface) end-to-end on every daisd
// endpoint: GetResourceList enumerates exactly the hosted abstract
// names, ResolveName returns an EPR whose address and reference
// parameter reproduce the endpoint and name, and an unknown name
// faults typed. daisgw proxies these same operations through the
// shared ops codecs, so this conformance also anchors the federation
// gateway's merge semantics.
func TestResourceListConformance(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	srv.fileEp.Service().SetAddress(base + "/files")
	c := client.New(nil)
	ctx := context.Background()

	for _, tc := range []struct {
		endpoint string
		resource string
	}{
		{base + "/sql", srv.sqlRes.AbstractName()},
		{base + "/xml", srv.xmlRes.AbstractName()},
		{base + "/files", srv.fileRes.AbstractName()},
	} {
		names, err := c.GetResourceList(ctx, tc.endpoint)
		if err != nil {
			t.Fatalf("%s: %v", tc.endpoint, err)
		}
		if len(names) != 1 || names[0] != tc.resource {
			t.Fatalf("%s: list = %v, want [%s]", tc.endpoint, names, tc.resource)
		}
		ref, err := c.Resolve(ctx, tc.endpoint, tc.resource)
		if err != nil {
			t.Fatalf("%s: resolve: %v", tc.endpoint, err)
		}
		if ref.Address != tc.endpoint || ref.AbstractName != tc.resource {
			t.Fatalf("%s: resolved = %+v", tc.endpoint, ref)
		}
		if _, err := c.Resolve(ctx, tc.endpoint, "urn:ghost"); err == nil {
			t.Fatalf("%s: resolve of unknown name should fault", tc.endpoint)
		}
	}

	// A factory-derived resource appears in the list and resolves, and
	// disappears after destroy — the lifecycle the gateway's placement
	// table mirrors.
	sqlRef := client.Ref(base+"/sql", srv.sqlRes.AbstractName())
	derived, err := c.SQLExecuteFactory(ctx, sqlRef, `SELECT id FROM emp`, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	names, err := c.GetResourceList(ctx, base+"/sql")
	if err != nil || len(names) != 2 {
		t.Fatalf("after factory: list = %v, %v", names, err)
	}
	if _, err := c.Resolve(ctx, base+"/sql", derived.AbstractName); err != nil {
		t.Fatal(err)
	}
	if err := c.DestroyDataResource(ctx, derived); err != nil {
		t.Fatal(err)
	}
	names, err = c.GetResourceList(ctx, base+"/sql")
	if err != nil || len(names) != 1 {
		t.Fatalf("after destroy: list = %v, %v", names, err)
	}
}

func TestFileServiceComposition(t *testing.T) {
	srv, base := startTestServer(t, config{wsrf: true, seedRows: 3, concurrent: true})
	srv.fileEp.Service().SetAddress(base + "/files")
	c := client.New(nil)
	ref := client.Ref(base+"/files", srv.fileRes.AbstractName())
	infos, err := c.ListFiles(context.Background(), ref, "runs/**")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %v, %v", infos, err)
	}
	data, err := c.ReadFile(context.Background(), ref, "calib/atlas.cal", 0, -1)
	if err != nil || string(data) != "gain=1.07" {
		t.Fatalf("read = %q, %v", data, err)
	}
	staged, err := c.FileSelectFactory(context.Background(), ref, "runs/**", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListFiles(context.Background(), staged, ""); err != nil {
		t.Fatal(err)
	}
}
