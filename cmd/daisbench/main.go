// Command daisbench runs the evaluation suite E1–E13, E15–E18
// (DESIGN.md §4 / EXPERIMENTS.md) end-to-end and prints one table per
// experiment. Each experiment operationalises a quantifiable claim from
// the paper; the expected shapes are documented in EXPERIMENTS.md. E13
// additionally reports B/op and allocs/op columns and writes
// BENCH_E13.json, E15 writes BENCH_E15.json, E16 (federation gateway
// overhead) writes BENCH_E16.json, E17 (open-loop capacity curves)
// writes BENCH_E17.json, and E18 (columnar execution core) writes
// BENCH_E18.json, so the perf trajectory is tracked across PRs.
//
// Usage:
//
//	daisbench [-quick] [-only E1,E3] [-seed 1] [-e17-rates 200,400,800]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"dais/internal/bench"
)

// parseOnly turns the -only flag value into the selected-experiment
// set: ids are case-insensitive, whitespace-tolerant, empty entries
// skipped. An empty selection means "run everything".
func parseOnly(s string) map[string]bool {
	selected := map[string]bool{}
	for _, id := range strings.Split(s, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			selected[id] = true
		}
	}
	return selected
}

// parseRates turns the -e17-rates flag value into the sweep's offered
// arrival rates. Rates must be positive, finite and ascending — a
// descending sweep would let saturation bleed backwards into the
// points meant to establish the below-knee baseline. An empty value
// returns nil, meaning "use the built-in sweep".
func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty rate in %q", s)
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("rate %q: %w", part, err)
		}
		if v <= 0 || v != v || v > 1e9 {
			return nil, fmt.Errorf("rate %v out of range (want 0 < rate ≤ 1e9)", v)
		}
		if len(out) > 0 && v <= out[len(out)-1] {
			return nil, fmt.Errorf("rates must ascend: %v after %v", v, out[len(out)-1])
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (default all)")
	seed := flag.Int64("seed", 1, "deterministic seed for the E17 open-loop load harness")
	e17Rates := flag.String("e17-rates", "", "override E17 sweep rates (comma-separated ascending rps)")
	flag.Parse()

	selected := parseOnly(*only)
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	sizes := []int{1, 10, 100, 1000, 10000}
	pageRows, pages := 10000, []int{1, 10, 100, 1000}
	tableCounts := []int{0, 10, 50, 200}
	clientCounts := []int{1, 2, 4, 8, 16}
	iters := 200
	if *quick {
		sizes = []int{1, 10, 100, 1000}
		pageRows, pages = 2000, []int{10, 100, 1000}
		tableCounts = []int{0, 10, 50}
		clientCounts = []int{1, 4, 8}
		iters = 50
	}

	if want("E1") {
		rows, err := bench.RunE1(sizes)
		fatal("E1", err)
		table("E1  Direct vs indirect access (paper Fig. 1)",
			"rows\tdirect latency\tdirect bytes→consumer\tindirect setup\tEPR bytes→consumer\tindirect total\tbytes→3rd party",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%v\t%d\t%v\t%d\t%v\t%d\n",
						r.Rows, r.DirectLatency, r.DirectBytes, r.IndirectSetup,
						r.IndirectBytes, r.IndirectTotal, r.ThirdPartyPull)
				}
			})
	}
	if want("E2") {
		rows, err := bench.RunE2(sizes)
		fatal("E2", err)
		table("E2  Third-party delivery (paper Fig. 5: indirect access avoids data movement)",
			"rows\tbytes through consumer1 (relay)\tbytes through consumer1 (EPR hand-off)\tbytes to reader",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", r.Rows, r.RelayBytes, r.EPRBytes, r.ReaderBytes)
				}
			})
	}
	if want("E3") {
		rows, err := bench.RunE3(tableCounts)
		fatal("E3", err)
		table("E3  WSRF fine-grained property access (paper §5)",
			"catalog tables\twhole doc bytes\twhole doc time\tsingle prop bytes\tsingle prop time",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%v\n",
						r.CatalogTables, r.WholeDocBytes, r.WholeDocTime, r.SinglePropByte, r.SinglePropTime)
				}
			})
	}
	if want("E4") {
		rows, err := bench.RunE4(pageRows, pages)
		fatal("E4", err)
		table(fmt.Sprintf("E4  GetTuples paging, %d rows (paper §4.3)", pageRows),
			"page size\tcalls\ttotal\tper row\twire bytes",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%d\t%v\t%v\t%d\n", r.PageSize, r.Calls, r.Total, r.PerRow, r.WireBytes)
				}
			})
	}
	if want("E5") {
		rows, err := bench.RunE5(iters * 5)
		fatal("E5", err)
		table("E5  Thin vs thick wrapper (paper §2.1)",
			"statement\tthin/exec\tthick/exec\tthick÷thin",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%.40s\t%v\t%v\t%.2fx\n", r.Statement, r.ThinPer, r.ThickPer, r.Overhead)
				}
			})
	}
	if want("E6") {
		rows, err := bench.RunE6(clientCounts, 20)
		fatal("E6", err)
		table("E6  ConcurrentAccess property: short-query latency under long-scan load (paper §4.2)",
			"long scanners\tshort latency (concurrent)\tshort latency (serialized)\tslowdown",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%v\t%v\t%.2fx\n",
						r.LongScanners, r.ShortConcurrent, r.ShortSerialized, r.SlowdownSerial)
				}
			})
	}
	if want("E7") {
		rows, err := bench.RunE7([]int{1, 10, 100, 1000}, iters/2)
		fatal("E7", err)
		table("E7  SOAP wrapper overhead (paper §3)",
			"rows\tengine/exec\tSOAP/exec\toverhead\tfactor",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%v\t%v\t%v\t%.1fx\n", r.Rows, r.EnginePer, r.SOAPPer, r.OverheadPer, r.Factor)
				}
			})
	}
	if want("E8") {
		rows, err := bench.RunE8([]int{10, 100, 500})
		fatal("E8", err)
		table("E8  Soft-state lifetime vs explicit destroy (paper §5)",
			"resources\texplicit destroy total\tsweep time\tleaked before sweep\tleaked after",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%v\t%v\t%d\t%d\n",
						r.Resources, r.ExplicitDestroy, r.SoftStateSweep, r.LeakedWithout, r.LeakedWithReaper)
				}
			})
	}
	if want("E9") {
		rows, err := bench.RunE9(1000, 20)
		fatal("E9", err)
		table("E9  Dataset formats (paper §4.1 DatasetMap)",
			"format\trows\tbytes\tencode\tdecode",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%v\n", short(r.Format), r.Rows, r.Bytes, r.EncodePer, r.DecodePer)
				}
			})
	}
	if want("E10") {
		rows, err := bench.RunE10(iters * 2)
		fatal("E10", err)
		table("E10 Transaction properties (paper §4.2)",
			"mode\tupdate/exec\tdirty reads (of 20)\trows leaked after failed stmt",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%v\t%d\t%d\n", r.Mode, r.UpdatesPer, r.DirtyReads, r.LostAfterErr)
				}
			})
	}
	if want("E11") {
		rows, err := bench.RunE11([]int{1, 10, 50}, 16384)
		fatal("E11", err)
		table("E11 File staging (WS-DAIF extension: select-and-stage vs relay)",
			"files\tfile size\trelay bytes→coordinator\tstage bytes→coordinator\tstage latency\tbytes→reader",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%v\t%d\n",
						r.Files, r.FileSize, r.RelayBytes, r.StageBytes, r.StageLatency, r.ReaderBytes)
				}
			})
	}
	if want("E12") {
		rows, err := bench.RunE12(iters)
		fatal("E12", err)
		table("E12 Client vs server latency percentiles (telemetry /metrics scrape)",
			"operation\tcalls\tclient p50\tclient p95\tclient p99\tserver p50\tserver p95\tserver p99",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\t%v\n",
						r.Op, r.Calls, r.ClientP50, r.ClientP95, r.ClientP99,
						r.ServerP50, r.ServerP95, r.ServerP99)
				}
			})
	}
	if want("E13") {
		rows, err := bench.RunE13()
		fatal("E13", err)
		table("E13 Hot-path allocation profile (pooled encode, windowed paging, hash join)",
			"path\tns/op\tB/op\tallocs/op",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", r.Path, r.NsPerOp, r.BPerOp, r.AllocsOp)
				}
			})
		// Machine-readable trail so the perf trajectory is comparable
		// across PRs without re-parsing the table.
		data, err := json.MarshalIndent(rows, "", "  ")
		fatal("E13", err)
		if err := os.WriteFile("BENCH_E13.json", append(data, '\n'), 0o644); err != nil {
			fatal("E13", err)
		}
		fmt.Println("\nE13 rows written to BENCH_E13.json")
	}
	if want("E15") {
		e15Rows := 1_000_000
		if *quick {
			e15Rows = 50_000
		}
		rows, err := bench.RunE15(e15Rows, []int{1, 8})
		fatal("E15", err)
		table(fmt.Sprintf("E15 Streaming result pipeline: %d-row end-to-end fetch (chunked GetTuples reassembly)", e15Rows),
			"spill\tchunks\twire bytes\telapsed\tMB/s\trows/s\tspilled bytes",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%v\t%d\t%d\t%v\t%.1f\t%.0f\t%d\n",
						r.Spill, r.Chunks, r.WireBytes, r.Elapsed.Round(time.Millisecond),
						r.MBPerSec, r.RowsPerSec, r.SpilledBytes)
				}
			})
		data, err := json.MarshalIndent(rows, "", "  ")
		fatal("E15", err)
		if err := os.WriteFile("BENCH_E15.json", append(data, '\n'), 0o644); err != nil {
			fatal("E15", err)
		}
		fmt.Println("\nE15 rows written to BENCH_E15.json")
	}
	if want("E18") {
		e18Sizes := []int{10_000, 100_000, 1_000_000}
		e18Iters := 5
		if *quick {
			e18Sizes = []int{10_000, 100_000}
			e18Iters = 3
		}
		rows, err := bench.RunE18(e18Sizes, e18Iters)
		fatal("E18", err)
		table("E18 Columnar execution core: vectorised scan/filter/aggregate vs row executor",
			"rows\tworkload\tvector/exec\trow/exec\tspeedup\tout rows\tbatches\tskipped",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%s\t%v\t%v\t%.1fx\t%d\t%d\t%d\n",
						r.Rows, r.Workload, r.VectorPer, r.RowPer, r.Speedup,
						r.OutRows, r.Batches, r.Skipped)
				}
			})
		data, err := json.MarshalIndent(rows, "", "  ")
		fatal("E18", err)
		if err := os.WriteFile("BENCH_E18.json", append(data, '\n'), 0o644); err != nil {
			fatal("E18", err)
		}
		fmt.Println("\nE18 rows written to BENCH_E18.json")
	}
	if want("E16") {
		e16Sizes := []int{30, 300, 3000}
		e16Iters := 30
		if *quick {
			e16Sizes = []int{30, 300}
			e16Iters = 10
		}
		rows, err := bench.RunE16(e16Sizes, e16Iters)
		fatal("E16", err)
		table("E16 Federation gateway: proxy overhead and 3-shard scatter-gather vs single node",
			"rows\tdirect\tvia gateway\tproxy factor\tsingle-node scan\t3-shard scatter\tscatter factor",
			func(w *tabwriter.Writer) {
				for _, r := range rows {
					fmt.Fprintf(w, "%d\t%v\t%v\t%.2fx\t%v\t%v\t%.2fx\n",
						r.Rows, r.DirectPer, r.GatewayPer, r.ProxyFactor,
						r.SinglePer, r.ScatterPer, r.ScatterRate)
				}
			})
		data, err := json.MarshalIndent(rows, "", "  ")
		fatal("E16", err)
		if err := os.WriteFile("BENCH_E16.json", append(data, '\n'), 0o644); err != nil {
			fatal("E16", err)
		}
		fmt.Println("\nE16 rows written to BENCH_E16.json")
	}
	if want("E17") {
		cfg := bench.E17Config{
			Rates:        []float64{200, 400, 800, 1600, 3200},
			StepDuration: 2 * time.Second,
			Seed:         *seed,
			ChurnCycles:  20_000,
		}
		if *quick {
			cfg.Rates = []float64{150, 400}
			cfg.StepDuration = 700 * time.Millisecond
			cfg.ChurnCycles = 2_000
		}
		if rates, err := parseRates(*e17Rates); err != nil {
			fatal("E17", err)
		} else if rates != nil {
			cfg.Rates = rates
		}
		rep, err := bench.RunE17(cfg)
		fatal("E17", err)
		table(fmt.Sprintf("E17 Open-loop capacity curve: %s (SLO p99 ≤ %.0fms, seed %d)",
			rep.Single.Target, rep.Single.SLOMs, rep.Seed),
			"offered rps\tachieved\tok\tshed\terrors\tp50 ms\tp99 ms\tp99.9 ms\twithin SLO",
			func(w *tabwriter.Writer) {
				for _, p := range rep.Single.Points {
					fmt.Fprintf(w, "%.0f\t%.0f\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%v\n",
						p.OfferedRPS, p.AchievedRPS, p.OK, p.Shed, p.Errors,
						p.P50Ms, p.P99Ms, p.P999Ms, p.WithinSLO)
				}
				fmt.Fprintf(w, "knee\t%.0f rps (offered %.0f)\n", rep.Single.KneeRPS, rep.Single.KneeOfferedRPS)
			})
		table(fmt.Sprintf("E17 Open-loop capacity curve: %s (3 replicated backends)", rep.Cluster.Target),
			"offered rps\tachieved\tok\tshed\terrors\tp50 ms\tp99 ms\tp99.9 ms\twithin SLO",
			func(w *tabwriter.Writer) {
				for _, p := range rep.Cluster.Points {
					fmt.Fprintf(w, "%.0f\t%.0f\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\t%v\n",
						p.OfferedRPS, p.AchievedRPS, p.OK, p.Shed, p.Errors,
						p.P50Ms, p.P99Ms, p.P999Ms, p.WithinSLO)
				}
				fmt.Fprintf(w, "knee\t%.0f rps (offered %.0f)\n", rep.Cluster.KneeRPS, rep.Cluster.KneeOfferedRPS)
			})
		if rep.Churn != nil {
			table("E17 Lifetime churn (factory-created short-TTL resources racing the reaper)",
				"cycles\tdestroy won\treaper won\tmisclassified\tfetch-after-reap ok\tcycles/s",
				func(w *tabwriter.Writer) {
					c := rep.Churn
					fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.0f\n",
						c.Cycles, c.DestroyWon, c.ReaperWon, c.Misclassified,
						c.FetchAfterReapOK, c.CyclesPerSec)
				})
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal("E17", err)
		if err := os.WriteFile("BENCH_E17.json", append(data, '\n'), 0o644); err != nil {
			fatal("E17", err)
		}
		fmt.Println("\nE17 report written to BENCH_E17.json")
	}
}

func table(title, header string, body func(*tabwriter.Writer)) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	body(w)
	w.Flush()
}

func short(uri string) string {
	if i := strings.LastIndex(uri, "/"); i >= 0 {
		return uri[i+1:]
	}
	return uri
}

func fatal(id string, err error) {
	if err != nil {
		log.Fatalf("daisbench: %s: %v", id, err)
	}
}
