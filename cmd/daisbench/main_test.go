package main

import (
	"reflect"
	"testing"
)

func TestParseOnly(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]bool
	}{
		{"", map[string]bool{}},
		{"E1", map[string]bool{"E1": true}},
		{"e1, e17 ,E3", map[string]bool{"E1": true, "E17": true, "E3": true}},
		{",,", map[string]bool{}},
	}
	for _, tc := range cases {
		if got := parseOnly(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseOnly(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseRates(t *testing.T) {
	good := []struct {
		in   string
		want []float64
	}{
		{"", nil},
		{"   ", nil},
		{"100", []float64{100}},
		{"100, 200.5 ,400", []float64{100, 200.5, 400}},
	}
	for _, tc := range good {
		got, err := parseRates(tc.in)
		if err != nil {
			t.Errorf("parseRates(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseRates(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"abc",        // not a number
		"100,,200",   // empty entry
		"-5",         // negative
		"0",          // zero offered rate
		"NaN",        // not finite
		"400,200",    // descending
		"100,100",    // not strictly ascending
		"1e12",       // absurd rate
		"100,200,xy", // trailing junk
	}
	for _, in := range bad {
		if got, err := parseRates(in); err == nil {
			t.Errorf("parseRates(%q) accepted: %v", in, got)
		}
	}
}
