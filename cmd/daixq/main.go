// Command daixq is a WS-DAIX consumer: it runs XPath and XQuery
// queries, applies XUpdate documents and manages documents in a DAIS
// XML collection service.
//
// Usage:
//
//	daixq -url http://host:8090/xml xpath '/book[price > 50]/title'
//	daixq -url ... xquery 'for $b in /book order by $b/price return <t>{$b/title}</t>'
//	daixq -url ... list
//	daixq -url ... get book1.xml
//	daixq -url ... put book9.xml '<book id="9"><title>New</title></book>'
//	daixq -url ... rm book9.xml
//	daixq -url ... xupdate book1.xml '<xu:modifications ...>...</xu:modifications>'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"dais/internal/client"
	"dais/internal/xmlutil"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090/xml", "data service endpoint URL")
	resource := flag.String("resource", "", "data resource abstract name (default: first listed)")
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
	}
	ctx := context.Background()
	c := client.New(nil)
	name := *resource
	if name == "" {
		names, err := c.GetResourceList(ctx, *url)
		if err != nil {
			log.Fatalf("daixq: GetResourceList: %v", err)
		}
		if len(names) == 0 {
			log.Fatalf("daixq: service at %s hosts no resources", *url)
		}
		name = names[0]
	}
	ref := client.Ref(*url, name)

	cmd := flag.Arg(0)
	switch cmd {
	case "xpath", "xquery":
		if flag.NArg() != 2 {
			usage()
		}
		var items []client.SequenceItem
		var err error
		if cmd == "xpath" {
			items, err = c.XPathExecute(ctx, ref, flag.Arg(1))
		} else {
			items, err = c.XQueryExecute(ctx, ref, flag.Arg(1))
		}
		if err != nil {
			log.Fatalf("daixq: %s: %v", cmd, err)
		}
		for _, it := range items {
			if it.Node != nil {
				fmt.Printf("%s\t%s\n", it.Document, xmlutil.MarshalString(it.Node))
			} else {
				fmt.Printf("%s\t%s\n", it.Document, it.Value)
			}
		}
		fmt.Fprintf(os.Stderr, "-- %d item(s)\n", len(items))
	case "list":
		names, err := c.ListDocuments(ctx, ref)
		if err != nil {
			log.Fatalf("daixq: list: %v", err)
		}
		for _, n := range names {
			fmt.Println(n)
		}
	case "get":
		if flag.NArg() != 2 {
			usage()
		}
		doc, err := c.GetDocument(ctx, ref, flag.Arg(1))
		if err != nil {
			log.Fatalf("daixq: get: %v", err)
		}
		os.Stdout.Write(xmlutil.MarshalIndent(doc))
	case "put":
		if flag.NArg() != 3 {
			usage()
		}
		doc, err := xmlutil.ParseString(flag.Arg(2))
		if err != nil {
			log.Fatalf("daixq: put: bad document: %v", err)
		}
		if err := c.AddDocument(ctx, ref, flag.Arg(1), doc); err != nil {
			log.Fatalf("daixq: put: %v", err)
		}
	case "rm":
		if flag.NArg() != 2 {
			usage()
		}
		if err := c.RemoveDocument(ctx, ref, flag.Arg(1)); err != nil {
			log.Fatalf("daixq: rm: %v", err)
		}
	case "xupdate":
		if flag.NArg() != 3 {
			usage()
		}
		mods, err := xmlutil.ParseString(flag.Arg(2))
		if err != nil {
			log.Fatalf("daixq: xupdate: bad modifications: %v", err)
		}
		n, err := c.XUpdateExecute(ctx, ref, flag.Arg(1), mods)
		if err != nil {
			log.Fatalf("daixq: xupdate: %v", err)
		}
		fmt.Printf("%d node(s) modified\n", n)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: daixq [flags] <command>
commands:
  xpath  <expr>               run an XPath query across the collection
  xquery <query>              run a FLWOR query
  list                        list document names
  get <doc>                   print one document
  put <doc> <xml>             add a document
  rm  <doc>                   remove a document
  xupdate <doc> <mods-xml>    apply an XUpdate modifications document`)
	os.Exit(2)
}
